"""Static-analyzer gates — miscompile detection and zoo cleanliness.

Two contracts, both execution-free:

1. **Mutation gate**: inject every modeled miscompile class into a
   known-good compilation (at the descriptor-chain or schedule level)
   and assert the analyzer flags each one with the *expected* pass —
   a sanitizer that misses a shifted base address or an over-budget
   CBUF split is worse than none.
2. **Clean gate**: every zoo model on every hardware config analyzes
   with zero errors and zero warnings, so ``--verify`` can be turned
   on anywhere without false alarms.

The analyze path never touches the ISS, bus, or engine models; the
script also reports analysis cost next to compile cost to keep the
"well under one simulated run" property honest.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

from repro.nn.zoo import ZOO
from repro.nvdla.config import Precision, get_config
from repro.nvdla.programming import WRITE, build_chains
from repro.analyze import analyze_chains, analyze_loadable
from repro.compiler import CompileOptions, compile_network

try:
    from benchmarks.conftest import single_shot
except ModuleNotFoundError:  # script mode: sys.path[0] is benchmarks/
    from conftest import single_shot

#: Config -> the precision the paper evaluates it at.
CONFIG_PRECISION = {"nv_small": Precision.INT8, "nv_full": Precision.FP16}

ZOO_MODELS = ("lenet5", "resnet18", "resnet50", "mobilenet", "googlenet", "alexnet")
SMOKE_MODELS = ("lenet5", "resnet18")


def compile_model(model: str, config_name: str):
    config = get_config(config_name)
    precision = CONFIG_PRECISION[config_name]
    loadable = compile_network(
        ZOO[model](), config, CompileOptions(precision=precision)
    )
    return loadable, config


def mutate_chain_write(chains, unit: str, register: str, fn: Callable[[int], int]):
    """Rewrite the first matching descriptor write across the chains."""
    for chain in chains:
        for index, event in enumerate(chain.events):
            if event.kind == WRITE and event.unit == unit and event.register == register:
                chain.events[index] = replace(event, value=fn(event.value) & 0xFFFFFFFF)
                return chains
    raise AssertionError(f"no {unit}.{register} write found to mutate")


@dataclass(frozen=True)
class Mutation:
    """One injected miscompile class."""

    name: str
    description: str
    #: Pass ids that are allowed to claim the catch; detection requires
    #: at least one error from this set.
    expected_passes: frozenset[str]
    unit: str = ""
    register: str = ""
    fn: Callable[[int], int] | None = None
    swap_schedule: bool = False


MUTATIONS: tuple[Mutation, ...] = (
    # With descriptor fusion (the default) the first chains are fused
    # conv+SDP+PDP pipelines whose memory write is the PDP destination
    # — the SDP D_DST is a flying link, so base-shift mutations target
    # the PDP registers that actually reach DRAM.
    Mutation(
        name="shifted-base",
        description="output base address shifted outside the DRAM window",
        expected_passes=frozenset({"dma-bounds"}),
        unit="PDP", register="D_DST_ADDR_LOW", fn=lambda v: v + 0x0400_0000,
    ),
    Mutation(
        name="shifted-base-small",
        description="output base nudged off its blob (stays in-window)",
        expected_passes=frozenset({"hazard"}),
        unit="PDP", register="D_DST_ADDR_LOW", fn=lambda v: v + 0x100,
    ),
    Mutation(
        name="truncated-surface",
        description="output channel count halved (surface too small)",
        expected_passes=frozenset({"hazard", "layout"}),
        unit="SDP", register="D_DST_CHANNEL", fn=lambda v: max(1, v // 2),
    ),
    Mutation(
        name="swapped-producer-consumer",
        description="schedule order inverted: consumer launches first",
        expected_passes=frozenset({"dependency"}),
        swap_schedule=True,
    ),
    Mutation(
        name="cbuf-overbudget",
        description="data partition claims every CBUF bank, leaving "
                    "no weight bank",
        expected_passes=frozenset({"cbuf"}),
        unit="CDMA", register="D_BANK_DATA", fn=lambda v: 0,  # patched per-config
    ),
    Mutation(
        name="field-range",
        description="converter shift exceeds its 6-bit field",
        expected_passes=frozenset({"register-field"}),
        unit="SDP", register="D_CVT_SHIFT", fn=lambda v: 0x80,
    ),
    Mutation(
        name="stride-mismatch",
        description="input line stride doubled vs the packed layout",
        expected_passes=frozenset({"layout"}),
        unit="CDMA", register="D_DAIN_LINE_STRIDE", fn=lambda v: v * 2,
    ),
    Mutation(
        name="enum-field",
        description="pooling method set to an undefined enum value",
        expected_passes=frozenset({"register-field"}),
        unit="PDP", register="D_POOLING_METHOD", fn=lambda v: 7,
    ),
    Mutation(
        name="fused-dangling-producer",
        description="fused chain's PDP dropped to memory source while "
                    "the SDP still streams its result on-chip",
        expected_passes=frozenset({"chain"}),
        unit="PDP", register="D_SRC_FLYING", fn=lambda v: 0,
    ),
    Mutation(
        name="fused-stride-mismatch",
        description="fused PDP source line stride doubled vs the "
                    "canonical flying-cube layout",
        expected_passes=frozenset({"layout"}),
        unit="PDP_RDMA", register="D_SRC_LINE_STRIDE", fn=lambda v: v * 2,
    ),
)


def run_mutation_gate(model: str = "lenet5", config_name: str = "nv_small"):
    """Inject each miscompile; return per-mutation detection records."""
    loadable, config = compile_model(model, config_name)
    results = []
    for mutation in MUTATIONS:
        if mutation.swap_schedule:
            ops = loadable.schedule.ops
            ops[0], ops[1] = ops[1], ops[0]
            try:
                chains = build_chains(loadable, config)
                report = analyze_chains(chains, loadable, config,
                                        artifact=f"{model}+{mutation.name}")
            finally:
                ops[0], ops[1] = ops[1], ops[0]
        else:
            fn = mutation.fn
            if mutation.name == "cbuf-overbudget":
                fn = lambda v: config.cbuf_banks  # noqa: E731
            chains = mutate_chain_write(
                build_chains(loadable, config), mutation.unit, mutation.register, fn
            )
            report = analyze_chains(chains, loadable, config,
                                    artifact=f"{model}+{mutation.name}")
        error_passes = sorted({d.pass_id for d in report.errors})
        results.append({
            "mutation": mutation.name,
            "description": mutation.description,
            "detected": not report.clean,
            "attributed": bool(mutation.expected_passes & set(error_passes)),
            "expected_passes": sorted(mutation.expected_passes),
            "error_passes": error_passes,
            "error_codes": sorted({d.code for d in report.errors}),
            "errors": len(report.errors),
        })
    return results


def run_zoo_clean(models=ZOO_MODELS, configs=("nv_small", "nv_full")):
    """Compile + analyze each model/config pair; returns timing rows."""
    rows = []
    for config_name in configs:
        for model in models:
            began = time.perf_counter()
            loadable, config = compile_model(model, config_name)
            compile_ms = (time.perf_counter() - began) * 1e3
            began = time.perf_counter()
            report = analyze_loadable(loadable, config,
                                      artifact=f"{model}/{config_name}")
            analyze_ms = (time.perf_counter() - began) * 1e3
            rows.append({
                "model": model,
                "config": config_name,
                "chains": report.chains,
                "surfaces": report.surfaces,
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "clean": report.clean,
                "compile_ms": round(compile_ms, 1),
                "analyze_ms": round(analyze_ms, 1),
            })
    return rows


def _render_mutations(results) -> str:
    lines = ["mutation gate — every injected miscompile must be flagged"]
    for r in results:
        verdict = "CAUGHT" if r["detected"] and r["attributed"] else "MISSED"
        lines.append(
            f"  {r['mutation']:<26} {verdict}  "
            f"{r['errors']} error(s) via {','.join(r['error_passes']) or '-'}"
        )
    return "\n".join(lines)


def _render_clean(rows) -> str:
    lines = ["zoo clean gate — model x config, analyze vs compile cost"]
    for r in rows:
        lines.append(
            f"  {r['model']:<10} {r['config']:<8} "
            f"{r['chains']:>3} chains {r['surfaces']:>3} surfaces  "
            f"{'clean' if r['clean'] else 'DIRTY'}  "
            f"analyze {r['analyze_ms']:7.1f} ms vs compile {r['compile_ms']:8.1f} ms"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest gates
# ----------------------------------------------------------------------


def test_mutation_gate_catches_every_class(benchmark, report):
    results = single_shot(benchmark, run_mutation_gate)
    report(_render_mutations(results))
    assert len(results) >= 6  # the issue's floor on miscompile classes
    missed = [r["mutation"] for r in results if not r["detected"]]
    assert not missed, f"analyzer missed injected miscompiles: {missed}"
    misattributed = [
        f"{r['mutation']} (got {r['error_passes']}, wanted {r['expected_passes']})"
        for r in results if not r["attributed"]
    ]
    assert not misattributed, f"wrong pass claimed the catch: {misattributed}"


def test_zoo_analyzes_clean(benchmark, report):
    rows = single_shot(benchmark, run_zoo_clean)
    report(_render_clean(rows))
    assert len(rows) == len(ZOO_MODELS) * 2
    dirty = [f"{r['model']}/{r['config']}" for r in rows
             if r["errors"] or r["warnings"]]
    assert not dirty, f"zoo artifacts with findings: {dirty}"
    # Static analysis must stay far cheaper than one simulated run;
    # compile alone (a fraction of a run) already dwarfs it.
    slow = [r for r in rows if r["analyze_ms"] > r["compile_ms"]]
    assert not slow, f"analysis slower than compilation: {slow}"


# ----------------------------------------------------------------------
# Script entry point (CI artifact).
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse

    from repro.obs import bench_envelope

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run (lenet5+resnet18 only) for CI")
    parser.add_argument("--out", default=None, help="write results JSON here")
    args = parser.parse_args(argv)

    models = SMOKE_MODELS if args.smoke else ZOO_MODELS
    mutations = run_mutation_gate()
    clean = run_zoo_clean(models=models)
    print(_render_mutations(mutations))
    print(_render_clean(clean))

    caught = all(r["detected"] and r["attributed"] for r in mutations)
    all_clean = all(r["clean"] and not r["warnings"] for r in clean)
    fast = all(r["analyze_ms"] <= r["compile_ms"] for r in clean)
    gate_ok = caught and all_clean and fast and len(mutations) >= 6
    print("gates: " + ("PASS" if gate_ok else "FAIL"))

    if args.out:
        payload = bench_envelope(
            "bench_analyze.mutation_and_clean_gates",
            {"smoke": args.smoke, "models": list(models),
             "mutation_classes": len(mutations)},
            {"mutations": mutations, "clean": clean},
        )
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"results written to {args.out}")
    return 0 if gate_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
