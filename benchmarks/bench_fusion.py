"""Descriptor-fusion gates — correctness, cycles, and DRAM traffic.

The fusion ladder (``off`` → ``graph`` → ``descriptor``, see
``repro.compiler.fusion``) is locked down by four contracts:

1. **Bit-identity**: ``descriptor`` ≡ ``graph`` bit for bit on every
   zoo model, config and execution tier; ``off`` matches exactly for
   eltwise-free models and stays within the per-model ERDMA rounding
   band for the residual models (the per-add 6 % bound compounds with
   serial residual depth — see ``ELTWISE_BANDS`` in the differential
   test suite).
2. **Cycle reduction**: ≥ 10 % total-cycle reduction (off →
   descriptor) on at least three conv-heavy zoo models.
3. **DRAM traffic**: the fused schedule moves strictly fewer bytes
   through MCIF than the unfused one wherever fusion removed a chain
   — the eliminated intermediate surfaces are real, not renamed.
4. **Analyzability**: the full fused zoo analyzes clean, so fusion
   never trades speed for a blind static verifier.

Bundles are generated at ``fidelity="timing"`` (the harness's sweep
idiom — skips the generation-time VP's tensor compute and DBB trace
for AlexNet-class models) and re-tagged functional; both executors
compute real tensors themselves, and
``tests/compiler/test_fusion_differential.py::test_timing_shortcut_is_sound``
proves the shortcut is exact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analyze import analyze_loadable
from repro.baremetal import generate_baremetal
from repro.compiler import CompileOptions
from repro.core import FastPathExecutor, Soc
from repro.core.calibration import CalibrationTable
from repro.nn.quantize import calibrate_network
from repro.nn.zoo import ZOO
from repro.nvdla.config import Precision, get_config
from repro.nvdla.fastpath import pack_input

try:
    from benchmarks.conftest import single_shot
except ModuleNotFoundError:  # script mode: sys.path[0] is benchmarks/
    from conftest import single_shot

FUSION_MODES = ("off", "graph", "descriptor")
#: config name -> (precision, memory bus width)
CONFIG_POINTS = {"nv_small": (Precision.INT8, 32), "nv_full": (Precision.FP16, 64)}

ZOO_MODELS = ("lenet5", "resnet18", "resnet50", "mobilenet", "googlenet", "alexnet")
SMOKE_MODELS = ("lenet5", "resnet18")
#: models the ≥10 % cycle-reduction gate may count (conv+pool heavy)
CONV_HEAVY = ("resnet18", "resnet50", "mobilenet", "googlenet")
#: per-model max-|delta| band, as a fraction of the output scale
#: (kept in sync with tests/compiler/test_fusion_differential.py)
ELTWISE_BANDS = {"resnet18": 0.06, "resnet50": 0.30}
MIN_OFF_CORRELATION = 0.99

_calibrations: dict[str, CalibrationTable] = {}
_bundles: dict[tuple[str, str, str], object] = {}


def _calibration(model: str) -> CalibrationTable:
    if model not in _calibrations:
        _calibrations[model] = calibrate_network(ZOO[model](), samples=2)
    return _calibrations[model]


def _input(model: str) -> np.ndarray:
    rng = np.random.default_rng(2024)
    return rng.uniform(-1.0, 1.0, size=ZOO[model]().input_shape).astype(np.float32)


def _bundle(model: str, config_name: str, mode: str):
    key = (model, config_name, mode)
    if key not in _bundles:
        precision, _ = CONFIG_POINTS[config_name]
        options = CompileOptions(
            precision=precision,
            fusion=mode,
            calibration=_calibration(model) if precision is Precision.INT8 else None,
        )
        bundle = generate_baremetal(
            ZOO[model](),
            get_config(config_name),
            precision=precision,
            fidelity="timing",
            compile_options=options,
        )
        bundle.fidelity = "functional"
        _bundles[key] = bundle
    return _bundles[key]


def _fast_run(bundle, config_name: str, model: str):
    """Functional fast-tier run; returns (output, total_cycles, dram_bytes)."""
    _, bus = CONFIG_POINTS[config_name]
    table = CalibrationTable()
    executor = FastPathExecutor(
        get_config(config_name), calibration=table, memory_bus_width_bits=bus
    )
    estimate = executor.estimate(bundle)
    table.admit(
        bundle.network,
        bundle.config,
        bundle.precision,
        estimate.total_cycles,
        estimate.total_cycles,
        memory_bus_width_bits=bus,
    )
    result = executor.run(bundle, input_image=_input(model))
    assert result.ok and result.output is not None
    stats = executor.mcif.stats
    return result.output, estimate.total_cycles, stats.bytes_read + stats.bytes_written


def _soc_run(bundle, config_name: str, model: str):
    """Cycle-accurate run; returns (output, cycles, dram_bytes)."""
    _, bus = CONFIG_POINTS[config_name]
    soc = Soc(get_config(config_name), memory_bus_width_bits=bus)
    soc.load_bundle(bundle)
    address, packed = pack_input(bundle.loadable, get_config(config_name), _input(model))
    soc.preload_dram(address, packed)
    result = soc.run_inference(bundle)
    assert result.ok and result.output is not None
    stats = soc.wrapper.engine.mcif.stats
    return result.output, result.cycles, stats.bytes_read + stats.bytes_written


def _off_band_ok(model: str, fused: np.ndarray, off: np.ndarray) -> bool:
    if model in ELTWISE_BANDS:
        scale = float(np.abs(off).max()) + 1e-9
        if float(np.abs(fused - off).max()) > ELTWISE_BANDS[model] * scale:
            return False
        corr = float(np.corrcoef(fused.ravel(), off.ravel())[0, 1])
        return corr >= MIN_OFF_CORRELATION
    return bool(np.array_equal(fused, off))


def run_fusion_sweep(
    models=ZOO_MODELS,
    configs=("nv_small", "nv_full"),
    tier: str = "fast",
):
    """Differential rows for one execution tier over models × configs."""
    execute = _fast_run if tier == "fast" else _soc_run
    rows = []
    for config_name in configs:
        for model in models:
            began = time.perf_counter()
            outs, cycles, dram = {}, {}, {}
            for mode in FUSION_MODES:
                bundle = _bundle(model, config_name, mode)
                outs[mode], cycles[mode], dram[mode] = execute(
                    bundle, config_name, model
                )
            fused_chains = (
                _bundle(model, config_name, "off").loadable.hw_op_count()
                - _bundle(model, config_name, "descriptor").loadable.hw_op_count()
            )
            rows.append({
                "model": model,
                "config": config_name,
                "tier": tier,
                "chains_removed": fused_chains,
                "cycles_off": cycles["off"],
                "cycles_descriptor": cycles["descriptor"],
                "cycle_reduction_pct": round(
                    100.0 * (1 - cycles["descriptor"] / cycles["off"]), 2
                ),
                "dram_bytes_off": dram["off"],
                "dram_bytes_descriptor": dram["descriptor"],
                "dram_reduction_pct": round(
                    100.0 * (1 - dram["descriptor"] / max(1, dram["off"])), 2
                ),
                "identical_descriptor_graph": bool(
                    np.array_equal(outs["descriptor"], outs["graph"])
                ),
                "off_band_ok": _off_band_ok(model, outs["descriptor"], outs["off"]),
                "wall_s": round(time.perf_counter() - began, 1),
            })
    return rows


def run_fused_zoo_analyze(models=ZOO_MODELS, configs=("nv_small", "nv_full")):
    """Analyze every fused (descriptor-mode) artifact; returns rows."""
    rows = []
    for config_name in configs:
        for model in models:
            loadable = _bundle(model, config_name, "descriptor").loadable
            report = analyze_loadable(
                loadable, get_config(config_name),
                artifact=f"{model}/{config_name}+descriptor",
            )
            rows.append({
                "model": model,
                "config": config_name,
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "clean": report.clean,
            })
    return rows


def check_gates(fast_rows, soc_rows, analyze_rows) -> dict:
    """Evaluate every acceptance gate; returns named booleans."""
    rows = fast_rows + soc_rows
    bit_identical = all(r["identical_descriptor_graph"] for r in rows)
    off_band = all(r["off_band_ok"] for r in rows)
    heavy_wins = {
        r["model"]
        for r in fast_rows
        if r["model"] in CONV_HEAVY and r["cycle_reduction_pct"] >= 10.0
    }
    dram_reduced = all(
        r["dram_bytes_descriptor"] < r["dram_bytes_off"]
        for r in rows
        if r["chains_removed"] > 0
    )
    analyze_clean = all(r["clean"] for r in analyze_rows)
    return {
        "bit_identical_descriptor_graph": bit_identical,
        "off_within_band": off_band,
        "conv_heavy_10pct_models": sorted(heavy_wins),
        "conv_heavy_10pct": len(heavy_wins) >= 3,
        "dram_traffic_reduced": dram_reduced,
        "fused_zoo_analyzes_clean": analyze_clean,
        "ok": (
            bit_identical and off_band and len(heavy_wins) >= 3
            and dram_reduced and analyze_clean
        ),
    }


def _render(rows) -> str:
    lines = ["fusion differential — off vs descriptor, per model x config x tier"]
    for r in rows:
        lines.append(
            f"  {r['model']:<10} {r['config']:<8} {r['tier']:<5} "
            f"-{r['chains_removed']:>2} chains  "
            f"cycles {r['cycles_off']:>12,} -> {r['cycles_descriptor']:>12,} "
            f"({r['cycle_reduction_pct']:5.1f}%)  "
            f"dram -{r['dram_reduction_pct']:5.1f}%  "
            f"{'==' if r['identical_descriptor_graph'] else '!='} graph, "
            f"off {'ok' if r['off_band_ok'] else 'OUT OF BAND'}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest gates
# ----------------------------------------------------------------------


def test_fusion_gates_smoke_matrix(benchmark, report):
    """Both tiers, both configs, smoke models — every gate except the
    conv-heavy count (which needs the sweep models)."""
    def run():
        fast = run_fusion_sweep(models=SMOKE_MODELS, tier="fast")
        soc = run_fusion_sweep(models=SMOKE_MODELS, tier="cycle_accurate")
        analyze = run_fused_zoo_analyze(models=SMOKE_MODELS)
        return fast, soc, analyze

    fast, soc, analyze = single_shot(benchmark, run)
    report(_render(fast + soc))
    gates = check_gates(fast, soc, analyze)
    assert gates["bit_identical_descriptor_graph"]
    assert gates["off_within_band"]
    assert gates["dram_traffic_reduced"]
    assert gates["fused_zoo_analyzes_clean"]
    # resnet18 alone must already clear the 10% bar on the fast tier.
    r18 = next(r for r in fast if r["model"] == "resnet18")
    assert r18["cycle_reduction_pct"] >= 10.0


def test_fusion_gates_full_zoo(benchmark, report):
    """The issue's acceptance gates over the whole zoo (fast tier,
    both configs, plus the fused-zoo analyze gate)."""
    def run():
        fast = run_fusion_sweep(tier="fast")
        analyze = run_fused_zoo_analyze()
        return fast, analyze

    fast, analyze = single_shot(benchmark, run)
    report(_render(fast))
    gates = check_gates(fast, [], analyze)
    assert gates["ok"], gates


# ----------------------------------------------------------------------
# Script entry point (CI artifact).
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse

    from repro.obs import bench_envelope

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run (lenet5+resnet18, both tiers) for CI")
    parser.add_argument("--out", default=None, help="write results JSON here")
    args = parser.parse_args(argv)

    models = SMOKE_MODELS if args.smoke else ZOO_MODELS
    fast = run_fusion_sweep(models=models, tier="fast")
    soc_models = SMOKE_MODELS if args.smoke else models
    soc = run_fusion_sweep(models=soc_models, tier="cycle_accurate")
    analyze = run_fused_zoo_analyze(models=models)
    print(_render(fast + soc))
    gates = check_gates(fast, soc, analyze)
    if args.smoke:
        # The smoke matrix can't field three conv-heavy models; its
        # cycle gate is resnet18 clearing the bar on the fast tier.
        r18 = next(r for r in fast if r["model"] == "resnet18")
        gates["conv_heavy_10pct"] = r18["cycle_reduction_pct"] >= 10.0
        gates["ok"] = (
            gates["bit_identical_descriptor_graph"] and gates["off_within_band"]
            and gates["conv_heavy_10pct"] and gates["dram_traffic_reduced"]
            and gates["fused_zoo_analyzes_clean"]
        )
    print("gates: " + ("PASS" if gates["ok"] else f"FAIL {gates}"))

    if args.out:
        payload = bench_envelope(
            "bench_fusion.differential_gates",
            {"smoke": args.smoke, "models": list(models),
             "modes": list(FUSION_MODES)},
            {"fast": fast, "cycle_accurate": soc,
             "analyze": analyze, "gates": gates},
        )
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"results written to {args.out}")
    return 0 if gates["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
