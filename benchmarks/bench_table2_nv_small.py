"""Table II — nv_small FPGA inference latency at 100 MHz.

Runs the complete bare-metal flow (compile → VP trace → assembly →
SoC execution) for LeNet-5, ResNet-18 and ResNet-50, and the ESP
Linux-driver baseline at 50 MHz for the comparison column.

Paper rows: LeNet-5 4.8 ms, ResNet-18 16.2 ms, ResNet-50 1.1 s;
baseline: 263 ms / NA / 2.5 s.
"""

from __future__ import annotations

from repro.harness import format_table, run_table2

from benchmarks.conftest import single_shot


def _render(rows):
    return format_table(
        ["model", "layers", "input", "size MB", "cycles", "ms@100MHz", "paper ms",
         "ratio", "ESP@50MHz ms", "paper ESP", "speedup"],
        [
            [
                r.model,
                str(r.layers),
                "x".join(map(str, r.input_shape)),
                f"{r.model_size_mb:.1f}",
                f"{r.cycles:,}",
                f"{r.ms_at_100mhz:.1f}",
                f"{r.paper_ms:g}",
                f"{r.ratio:.2f}",
                f"{r.baseline_ms:.0f}" if r.baseline_ms else "-",
                f"{r.paper_baseline_ms:g}" if r.paper_baseline_ms else "NA",
                f"{r.speedup_vs_baseline:.0f}x" if r.speedup_vs_baseline else "-",
            ]
            for r in rows
        ],
        title="Table II — nv_small FPGA implementation results",
    )


def test_table2_full(benchmark, report):
    rows = single_shot(benchmark, lambda: run_table2())
    report(_render(rows))
    by_model = {r.model: r for r in rows}

    # Ordering: LeNet-5 < ResNet-18 << ResNet-50 (paper's column order).
    assert by_model["lenet5"].ms_at_100mhz < by_model["resnet18"].ms_at_100mhz
    assert by_model["resnet18"].ms_at_100mhz * 10 < by_model["resnet50"].ms_at_100mhz

    # Each row within ~2x of the published number.
    for row in rows:
        assert 0.4 <= row.ratio <= 2.5, (row.model, row.ratio)

    # The bare-metal-vs-Linux shape: huge win on LeNet (paper ~55x),
    # modest win on ResNet-50 (paper ~2.3x).
    lenet_speedup = by_model["lenet5"].speedup_vs_baseline
    resnet50_speedup = by_model["resnet50"].speedup_vs_baseline
    assert lenet_speedup > 20
    assert 1.2 <= resnet50_speedup <= 5
    assert lenet_speedup > resnet50_speedup * 5


def test_table2_model_size_column(benchmark, report):
    rows = single_shot(benchmark, lambda: run_table2(with_baseline=False))
    sizes = {r.model: r.model_size_mb for r in rows}
    # Paper sizes: 1.7 MB / 0.8 MB (INT8 file) / 102.5 MB.
    assert abs(sizes["lenet5"] - 1.7) < 0.1
    assert abs(sizes["resnet50"] - 102.5) < 1.0
    report(f"model sizes (fp32 MB): {sizes}")
