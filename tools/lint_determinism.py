#!/usr/bin/env python3
"""CI gate: no wall clocks or unseeded RNGs in virtual-clock code.

Thin CLI over :mod:`repro.analyze.codelint`.  Exits non-zero when any
target module reads host time or draws from unseeded randomness, with
``path:line:col`` findings a terminal (or editor) can jump to.

Usage::

    PYTHONPATH=src python tools/lint_determinism.py
    PYTHONPATH=src python tools/lint_determinism.py src/repro/vp

Exemptions, in reviewable order of preference:

1. inline, with a reason:  ``t = time.time()  # wall-clock: operator log``
2. central, by site:       add ``"<path>:<dotted.call>"`` to ALLOWLIST
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analyze.codelint import (  # noqa: E402
    DEFAULT_TARGETS,
    lint_repo,
    scan_paths,
)

#: Central exemptions: "<repo-relative-path>:<dotted call name>".
#: Empty on purpose — prefer the inline ``# wall-clock: <why>`` marker,
#: which keeps the justification next to the offending line.
ALLOWLIST: set[str] = set()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "targets", nargs="*",
        help=f"files/directories to lint (default: {', '.join(DEFAULT_TARGETS)})",
    )
    args = parser.parse_args(argv)

    if args.targets:
        violations = scan_paths(
            [Path(t) for t in args.targets], root=REPO_ROOT, allow=ALLOWLIST
        )
        scanned = ", ".join(args.targets)
    else:
        violations = lint_repo(REPO_ROOT, allow=ALLOWLIST)
        scanned = ", ".join(DEFAULT_TARGETS)

    for violation in violations:
        print(violation.render())
    verdict = "FAIL" if violations else "OK"
    print(f"determinism lint: {verdict} — {len(violations)} violation(s) in {scanned}")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
