"""Shared fixtures: tiny networks, platforms and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import Clock
from repro.mem import Bram, Dram, SparseMemory
from repro.nn.graph import Network
from repro.nn.layers import PoolKind
from repro.nvdla import NV_FULL, NV_SMALL


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def clock() -> Clock:
    return Clock(100e6)


@pytest.fixture
def small_memory() -> SparseMemory:
    return SparseMemory(1 << 24)


@pytest.fixture
def tiny_net() -> Network:
    """A minimal conv+pool+fc network that runs in milliseconds."""
    net = Network("tiny", seed=7)
    data = net.add_input("data", (1, 8, 8))
    conv = net.add_conv("conv1", data, num_output=8, kernel_size=3)
    relu = net.add_relu("relu1", conv)
    pool = net.add_pool("pool1", relu, PoolKind.MAX, kernel_size=2, stride=2)
    fc = net.add_fc("fc1", pool, num_output=4)
    net.add_softmax("prob", fc)
    net.validate()
    return net


@pytest.fixture
def residual_net() -> Network:
    """A small network with BN/Scale folding and an eltwise shortcut."""
    net = Network("residual", seed=11)
    data = net.add_input("data", (8, 8, 8))
    conv1 = net.add_conv("conv1", data, num_output=8, kernel_size=3, pad=1, bias=False)
    bn1 = net.add_batchnorm("bn1", conv1)
    scale1 = net.add_scale("scale1", bn1)
    relu1 = net.add_relu("relu1", scale1)
    conv2 = net.add_conv("conv2", relu1, num_output=8, kernel_size=3, pad=1, bias=False)
    bn2 = net.add_batchnorm("bn2", conv2)
    scale2 = net.add_scale("scale2", bn2)
    added = net.add_eltwise("add", scale2, data)
    relu2 = net.add_relu("relu2", added)
    net.add_fc("fc", relu2, num_output=4)
    net.validate()
    return net


@pytest.fixture
def branchy_net() -> Network:
    """Concat of two branches (exercises zero-copy concat aliasing)."""
    net = Network("branchy", seed=13)
    data = net.add_input("data", (8, 6, 6))
    left = net.add_conv("left", data, num_output=8, kernel_size=1)
    right = net.add_conv("right", data, num_output=16, kernel_size=3, pad=1)
    cat = net.add_concat("cat", [left, right])
    net.add_conv("tail", cat, num_output=8, kernel_size=1)
    net.validate()
    return net


@pytest.fixture(params=["nv_small", "nv_full"])
def any_config(request):
    return NV_SMALL if request.param == "nv_small" else NV_FULL


class DirectDbbPort:
    """Test double: an NVDLA memory port over a SparseMemory."""

    def __init__(self, memory: SparseMemory, bytes_per_cycle: int = 4) -> None:
        self.memory = memory
        self.bytes_per_cycle = bytes_per_cycle

    def read(self, address: int, nbytes: int) -> bytes:
        return self.memory.read(address, nbytes)

    def write(self, address: int, data: bytes) -> None:
        self.memory.write(address, data)

    def stream_cycles(self, address: int, nbytes: int) -> int:
        return max(1, nbytes // self.bytes_per_cycle)


@pytest.fixture
def dbb_port(small_memory) -> DirectDbbPort:
    return DirectDbbPort(small_memory)


@pytest.fixture
def dram() -> Dram:
    return Dram(size=1 << 22)


@pytest.fixture
def bram() -> Bram:
    return Bram(size=1 << 16)
