"""VP trace log → obs spans / Chrome trace-event conversion."""

from __future__ import annotations

import json

from repro.vp.trace_log import TraceLog, parse_trace


def sample_log():
    log = TraceLog()
    log.log_csb(12, 0xB010, 0x1, True)
    log.log_csb(15, 0xC, 0x4, False)
    log.log_dbb(20, 0x100000, bytes(range(64)), False)
    return log


def test_to_spans_places_transactions_on_the_simulated_clock():
    spans = sample_log().to_spans(frequency_hz=100e6)
    assert [s["name"] for s in spans] == ["csb.write", "csb.read", "dbb.read"]
    period = 1.0 / 100e6
    write = spans[0]
    assert write["start_s"] == 12 * period
    assert write["end_s"] == 13 * period  # one-cycle instants
    assert write["attrs"] == {
        "cycle": 12, "address": "0x0000b010", "iswrite": True,
        "data": "0x00000001",
    }
    # CSB on lane 0, DBB on lane 1; DBB carries a byte count, not data.
    assert [s["process"] for s in spans] == [0, 0, 1]
    assert spans[2]["attrs"]["bytes"] == 64
    assert "data" not in spans[2]["attrs"]
    # Root spans with unique ids in one "vp" trace.
    assert all(s["parent_id"] is None and s["trace_id"] == "vp" for s in spans)
    assert len({s["span_id"] for s in spans}) == 3


def test_frequency_scales_timestamps():
    slow = sample_log().to_spans(frequency_hz=50e6)
    fast = sample_log().to_spans(frequency_hz=100e6)
    assert slow[0]["start_s"] == 2 * fast[0]["start_s"]


def test_to_trace_events_labels_the_bus_lanes():
    payload = sample_log().to_trace_events()
    events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    meta = {(m["name"], m["pid"]): m["args"]["name"]
            for m in payload["traceEvents"] if m["ph"] == "M"}
    assert len(events) == 3
    assert meta[("process_name", 0)] == "csb"
    assert meta[("process_name", 1)] == "dbb"
    json.loads(json.dumps(payload))  # Perfetto-loadable as-is


def test_parsed_trace_converts_like_the_original():
    log = sample_log()
    reparsed = parse_trace(log.render())
    assert reparsed.to_spans() == log.to_spans()


def test_empty_log_converts_cleanly():
    assert TraceLog().to_spans() == []
    assert TraceLog().to_trace_events() == {
        "traceEvents": [], "displayTimeUnit": "ms"}
