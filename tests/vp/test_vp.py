"""Virtual platform: trace format, runtime execution, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import CompileOptions, compile_network
from repro.errors import TraceError
from repro.nn import ReferenceExecutor
from repro.nn.zoo import lenet5
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision
from repro.vp import NvdlaRuntime, TraceLog, VirtualPlatform, parse_trace
from repro.vp.trace_log import CsbTransaction, DbbTransaction


# ----------------------------------------------------------------------
# Trace log format.
# ----------------------------------------------------------------------


def test_csb_line_format():
    txn = CsbTransaction(cycle=12, address=0xB010, data=0x1, iswrite=True)
    assert txn.render() == "12 nvdla.csb_adaptor: addr=0x0000b010 data=0x00000001 iswrite=1"


def test_dbb_line_format():
    txn = DbbTransaction(cycle=3, address=0x100000, data=b"\xAA\xBB", iswrite=False)
    line = txn.render()
    assert "nvdla.dbb_adaptor" in line
    assert "len=2" in line and "data=aabb" in line


def test_trace_roundtrip():
    log = TraceLog()
    log.log_csb(1, 0x5000, 0xDEAD, True)
    log.log_csb(2, 0x000C, 0x4, False)
    log.log_dbb(3, 0x100000, bytes(range(100)), False)
    back = parse_trace(log.render())
    assert len(back.csb) == 2
    assert back.csb[0].data == 0xDEAD
    assert back.csb[1].iswrite is False
    assert sum(len(t.data) for t in back.dbb) == 100


def test_dbb_chunked_into_lines():
    log = TraceLog()
    log.log_dbb(0, 0x1000, bytes(200), True)
    assert len(log.dbb) == 4  # 64+64+64+8
    assert log.dbb[1].address == 0x1040


def test_parse_skips_unrelated_lines():
    text = "hello world\n5 nvdla.csb_adaptor: addr=0x00000000 data=0x00000001 iswrite=1\n"
    log = parse_trace(text)
    assert len(log.csb) == 1


def test_parse_rejects_malformed_adaptor_line():
    with pytest.raises(TraceError):
        parse_trace("5 nvdla.csb_adaptor: addr=xyz\n")
    with pytest.raises(TraceError):
        parse_trace("5 nvdla.dbb_adaptor: addr=0x0 len=4 iswrite=0 data=aa\n")


def test_transactions_preserve_order():
    log = TraceLog()
    log.log_csb(1, 0x0, 0, True)
    log.log_dbb(2, 0x100, b"\x01", False)
    log.log_csb(3, 0x4, 1, True)
    kinds = [type(t).__name__ for t in log.transactions()]
    assert kinds == ["CsbTransaction", "DbbTransaction", "CsbTransaction"]


# ----------------------------------------------------------------------
# Platform + runtime.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def lenet_run():
    net = lenet5()
    loadable = compile_network(net, NV_SMALL)
    platform = VirtualPlatform(NV_SMALL)
    runtime = NvdlaRuntime(platform)
    runtime.deploy(loadable)
    rng = np.random.default_rng(42)
    image = rng.uniform(-1, 1, net.input_shape).astype(np.float32)
    runtime.set_input(image)
    result = runtime.execute()
    return net, loadable, platform, image, result


def test_runtime_executes_all_hw_ops(lenet_run):
    _, loadable, _, _, result = lenet_run
    assert result.ops == loadable.hw_op_count()
    assert result.cycles > 0


def test_runtime_output_close_to_float_reference(lenet_run):
    net, _, _, image, result = lenet_run
    executor = ReferenceExecutor(net)
    executor.run(image, record_blobs=True)
    expected = executor.blobs["ip2"]
    error = np.abs(result.output - expected).max()
    assert error <= 0.08 * np.abs(expected).max() + 1e-3  # INT8 tolerance


def test_runtime_softmax_normalised(lenet_run):
    _, _, _, _, result = lenet_run
    assert result.probabilities is not None
    assert result.probabilities.sum() == pytest.approx(1.0, abs=1e-5)


def test_trace_contains_interrupt_protocol(lenet_run):
    _, loadable, platform, _, result = lenet_run
    from repro.nvdla.csb import UNIT_BASES
    from repro.nvdla.units.glb import INTR_STATUS

    status_addr = UNIT_BASES["GLB"] + INTR_STATUS
    reads = [t for t in platform.trace.csb if not t.iswrite and t.address == status_addr]
    clears = [t for t in platform.trace.csb if t.iswrite and t.address == status_addr]
    assert len(reads) == loadable.hw_op_count()
    assert len(clears) == loadable.hw_op_count()
    for read, clear in zip(reads, clears):
        assert read.data == clear.data  # W1C acknowledges what was read


def test_trace_alternates_pingpong_groups(lenet_run):
    _, _, platform, _, _ = lenet_run
    from repro.nvdla.csb import UNIT_BASES
    from repro.nvdla.registers import S_POINTER

    pdp_pointer = UNIT_BASES["PDP"] + S_POINTER
    writes = [t.data for t in platform.trace.csb if t.iswrite and t.address == pdp_pointer]
    # Both pools ride their conv's chain as fused PDP epilogues, so
    # the PDP pointer ping-pongs with the conv ops (0 then 1).
    assert writes == [0, 1]


def test_fp16_run_matches_reference_closely(rng, tiny_net):
    loadable = compile_network(tiny_net, NV_FULL, CompileOptions(precision=Precision.FP16))
    platform = VirtualPlatform(NV_FULL)
    runtime = NvdlaRuntime(platform)
    runtime.deploy(loadable)
    image = rng.uniform(-1, 1, tiny_net.input_shape).astype(np.float32)
    runtime.set_input(image)
    result = runtime.execute()
    executor = ReferenceExecutor(tiny_net)
    executor.run(image, record_blobs=True)
    expected = executor.blobs["fc1"]
    assert np.allclose(result.output, expected, rtol=0.05, atol=0.05)
    assert int(np.argmax(result.output)) == int(np.argmax(expected))


def test_deploy_rejects_config_mismatch(tiny_net):
    loadable = compile_network(tiny_net, NV_SMALL)
    platform = VirtualPlatform(NV_FULL)
    runtime = NvdlaRuntime(platform)
    with pytest.raises(TraceError):
        runtime.deploy(loadable)


def test_set_input_validates_shape(tiny_net):
    loadable = compile_network(tiny_net, NV_SMALL)
    platform = VirtualPlatform(NV_SMALL)
    runtime = NvdlaRuntime(platform)
    runtime.deploy(loadable)
    with pytest.raises(TraceError):
        runtime.set_input(np.zeros((2, 8, 8), dtype=np.float32))


def test_execute_without_deploy_rejected():
    runtime = NvdlaRuntime(VirtualPlatform(NV_SMALL))
    with pytest.raises(TraceError):
        runtime.execute()


def test_timing_fidelity_produces_trace_without_dbb_data(tiny_net):
    loadable = compile_network(tiny_net, NV_SMALL)
    platform = VirtualPlatform(NV_SMALL, fidelity="timing")
    runtime = NvdlaRuntime(platform)
    runtime.deploy(loadable)
    runtime.set_input(np.zeros(tiny_net.input_shape, dtype=np.float32))
    result = runtime.execute()
    assert result.ops == loadable.hw_op_count()
    assert len(platform.trace.csb) > 0
    assert len(platform.trace.dbb) == 0  # no functional traffic


def test_wait_for_interrupt_deadlock_detected():
    platform = VirtualPlatform(NV_SMALL)
    with pytest.raises(TraceError):
        platform.wait_for_interrupt()
