"""FPGA resource model: Table I reproduction and nv_full infeasibility."""

from __future__ import annotations

import pytest

from repro.errors import OverUtilizationError
from repro.fpga import (
    ResourceVector,
    ZCU102,
    build_table1_report,
    estimate_nvdla,
    estimate_soc,
    estimate_system,
    synthesize,
)
from repro.fpga.devices import DEVICES, VCU118
from repro.fpga.resources import MIG_DDR4, NVDLA_SMALL, PROGRAM_MEMORY, URISCV_CORE
from repro.nvdla import NV_FULL, NV_SMALL

# The paper's Table I rows (CLB LUTs, Regs, CARRY8, F7, F8, CLB, BRAM, DSP).
PAPER_TABLE1 = {
    "Overall System Set-up": (96733, 102823, 1825, 3719, 1133, 19898, 323.5, 39),
    "MIG DDR4": (8651, 10260, 56, 164, 0, 1754, 25.5, 3),
    "AXI SmartConnect": (5546, 7860, 0, 0, 0, 1137, 0, 0),
    "Our SoC": (81986, 83659, 1762, 3555, 1133, 17025, 298, 36),
    "nv_small NVDLA": (74575, 79567, 1569, 3091, 1048, 15734, 66, 32),
    "uRISC_V core": (6346, 2767, 173, 419, 67, 1297, 0, 4),
    "Program Memory": (241, 6, 0, 45, 18, 148, 232, 0),
}

_KEYS = ("luts", "regs", "carry8", "f7_muxes", "f8_muxes", "clbs", "bram_tiles", "dsps")


def _close(measured: ResourceVector, paper: tuple, tolerance: float = 0.02) -> bool:
    for key, expected in zip(_KEYS, paper):
        got = measured.as_dict()[key]
        if expected == 0:
            if got != 0:
                return False
        elif abs(got - expected) / expected > tolerance:
            return False
    return True


def test_nvdla_small_is_calibration_exact():
    assert estimate_nvdla(NV_SMALL) == NVDLA_SMALL.rounded()


@pytest.mark.parametrize("row,paper", list(PAPER_TABLE1.items()))
def test_table1_rows_reproduce(row, paper):
    report = build_table1_report(NV_SMALL)
    assert _close(report.rows[row], paper, tolerance=0.02), (
        row,
        report.rows[row].as_dict(),
        paper,
    )


def test_device_capacities_match_table_header():
    cap = ZCU102.capacity
    assert cap.luts == 274080
    assert cap.regs == 548160
    assert cap.bram_tiles == 912
    assert cap.dsps == 2520


def test_nv_small_system_fits_zcu102():
    result = synthesize(NV_SMALL, ZCU102)
    assert result.fits
    assert result.utilization["luts"] < 0.5


def test_nv_full_overutilises_zcu102_luts():
    """The paper: 'the LUTs overutilization was quite substantial'."""
    result = synthesize(NV_FULL, ZCU102)
    assert not result.fits
    assert result.utilization["luts"] > 2.0
    assert any("luts" in violation for violation in result.violations)


def test_nv_full_strict_raises():
    with pytest.raises(OverUtilizationError) as excinfo:
        synthesize(NV_FULL, ZCU102, strict=True)
    assert excinfo.value.used > excinfo.value.available


def test_nv_full_fits_a_vu9p_for_luts_or_not():
    """Even the big VCU118 struggles with nv_full's 2048-MAC array —
    consistent with nv_full being an ASIC-scale configuration."""
    result = synthesize(NV_FULL, VCU118)
    assert result.utilization["luts"] > 1.0


def test_resource_vector_arithmetic():
    a = ResourceVector(luts=10, dsps=1)
    b = ResourceVector(luts=5, bram_tiles=2.5)
    total = a + b
    assert total.luts == 15 and total.dsps == 1 and total.bram_tiles == 2.5
    assert a.scaled(2).luts == 20


def test_component_sums_are_consistent():
    soc = estimate_soc(NV_SMALL)
    parts = estimate_nvdla(NV_SMALL) + URISCV_CORE + PROGRAM_MEMORY
    assert soc.luts >= parts.luts  # glue logic on top
    system = estimate_system(NV_SMALL)
    assert system.luts >= soc.luts + MIG_DDR4.luts


def test_report_renders_all_rows():
    text = build_table1_report(NV_SMALL).render()
    for row in PAPER_TABLE1:
        assert row.split()[0] in text
    assert "274080" in text  # capacity header


def test_devices_registry():
    assert set(DEVICES) == {"ZCU102", "ZCU104", "VCU118"}
    assert DEVICES["ZCU102"] is ZCU102


def test_headroom_handles_zero_capacity():
    tiny = ResourceVector(luts=1)
    from repro.fpga.devices import Device

    device = Device("null", "x", ResourceVector())
    assert device.headroom(tiny)["luts"] == float("inf")
