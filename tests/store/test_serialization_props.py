"""Round-trip property tests for the store's serialization layers.

Hypothesis drives the container format (arbitrary section names,
payloads, compression flags, meta dicts) and the numpy-array section
codec (dtypes × shapes); the bundle/loadable laws are checked on real
compiled artefacts, including digest stability across *processes* (a
subprocess recompiles and reserializes from scratch and must produce
the byte-identical container).
"""

from __future__ import annotations

import io
import subprocess
import sys

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.store import (  # noqa: E402
    Section,
    read_container,
    serialize_bundle,
    serialize_loadable,
    deserialize_bundle,
    deserialize_loadable,
    sha256_hex,
    write_container,
)

# ----------------------------------------------------------------------
# Container format: read(write(x)) == x, and write is deterministic.
# ----------------------------------------------------------------------

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789._-", min_size=1, max_size=24
)
_sections = st.lists(
    st.tuples(_names, st.binary(max_size=2048), st.booleans()),
    max_size=8,
    unique_by=lambda t: t[0],
)
_meta = st.dictionaries(
    _names,
    st.one_of(st.integers(), st.text(max_size=32), st.booleans(), st.none()),
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(meta=_meta, sections=_sections)
def test_container_round_trip(meta, sections):
    blob = write_container(meta, [Section(n, d, c) for n, d, c in sections])
    got_meta, got_sections = read_container(blob)
    assert got_meta == meta
    assert got_sections == {name: data for name, data, _ in sections}


@settings(max_examples=30, deadline=None)
@given(meta=_meta, sections=_sections)
def test_container_write_is_deterministic(meta, sections):
    once = write_container(meta, [Section(n, d, c) for n, d, c in sections])
    twice = write_container(meta, [Section(n, d, c) for n, d, c in sections])
    assert once == twice
    # ... which is exactly what makes the content address stable.
    assert sha256_hex(once) == sha256_hex(twice)


@settings(max_examples=30, deadline=None)
@given(
    meta=_meta,
    sections=_sections.filter(lambda s: sum(len(d) for _, d, _ in s) > 0),
    data=st.data(),
)
def test_container_rejects_any_single_bit_flip(meta, sections, data):
    """Integrity is total: no flipped bit anywhere goes unnoticed."""
    from repro.errors import StoreIntegrityError

    blob = bytearray(write_container(meta, [Section(n, d, c) for n, d, c in sections]))
    position = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    blob[position] ^= 1 << bit
    with pytest.raises(StoreIntegrityError):
        read_container(bytes(blob))


# ----------------------------------------------------------------------
# numpy section codec: dtypes × shapes.
# ----------------------------------------------------------------------

_dtypes = st.sampled_from(["uint8", "int8", "int16", "int32", "float16", "float32", "float64"])
_shapes = st.lists(st.integers(min_value=1, max_value=5), min_size=0, max_size=4).map(tuple)


@settings(max_examples=60, deadline=None)
@given(dtype=_dtypes, shape=_shapes, data=st.data())
def test_array_sections_round_trip_exactly(dtype, shape, data):
    from repro.store.serialize import _array_bytes, _array_from

    size = int(np.prod(shape)) if shape else 1
    raw = data.draw(st.binary(min_size=size * 8, max_size=size * 8))
    array = np.frombuffer(raw[: size * np.dtype(dtype).itemsize], dtype=dtype)
    array = array.reshape(shape) if shape else array.reshape(())
    again = _array_from(_array_bytes(array))
    assert again.dtype == array.dtype and again.shape == array.shape
    # Byte-exact, including NaN payloads float equality would hide.
    assert again.tobytes() == array.tobytes()
    # And deterministic: same array, same serialized bytes.
    assert _array_bytes(array) == _array_bytes(again)


# ----------------------------------------------------------------------
# Bundle / loadable laws on real artefacts.
# ----------------------------------------------------------------------


def test_bundle_round_trip_law(lenet_bundle):
    """serialize∘deserialize∘serialize == serialize (the fixed point),
    and the reconstruction preserves the artifact digest."""
    blob = serialize_bundle(lenet_bundle)
    loaded = deserialize_bundle(blob)
    assert serialize_bundle(loaded) == blob
    assert loaded.artifact_digest() == lenet_bundle.artifact_digest()
    # Field-level spot checks (the digest covers these, but failures
    # here localise a regression immediately).
    assert loaded.network == lenet_bundle.network
    assert loaded.commands == lenet_bundle.commands
    assert loaded.assembly == lenet_bundle.assembly
    assert loaded.program.words == lenet_bundle.program.words
    assert loaded.program.symbols == lenet_bundle.program.symbols
    assert loaded.trace.render() == lenet_bundle.trace.render()
    assert loaded.vp_result.cycles == lenet_bundle.vp_result.cycles
    assert np.array_equal(loaded.input_image, lenet_bundle.input_image)
    assert [i.name for i in loaded.images.preload] == [
        i.name for i in lenet_bundle.images.preload
    ]


def test_loadable_round_trip_law(lenet_bundle):
    blob = serialize_loadable(lenet_bundle.loadable)
    loaded = deserialize_loadable(blob)
    assert serialize_loadable(loaded) == blob
    assert loaded.to_bytes() == lenet_bundle.loadable.to_bytes()


_SUBPROCESS_PROGRAM = """
import hashlib
from repro.serve.cache import BundleCache
from repro.store import serialize_bundle

bundle = BundleCache().bundle_for("lenet5", "nv_small", fidelity="timing")
print(bundle.artifact_digest())
print(hashlib.sha256(serialize_bundle(bundle)).hexdigest())
"""


def test_digest_stability_across_processes(lenet_bundle):
    """A different process compiling the same deployment produces the
    byte-identical container — the property content addressing and
    cross-worker store sharing stand on."""
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_PROGRAM],
        capture_output=True,
        text=True,
        check=True,
    )
    their_artifact, their_container = proc.stdout.split()
    assert their_artifact == lenet_bundle.artifact_digest()
    assert their_container == sha256_hex(serialize_bundle(lenet_bundle))
