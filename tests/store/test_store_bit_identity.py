"""The tentpole gate: store-loaded bundles are bit-identical to fresh
compiles for every zoo model.

For each model the compiled bundle goes through a full store round
trip (serialize → content-addressed write → verified read →
deserialize) and the result must reserialize to the *same bytes* and
carry the same artifact digest. The two calibration-class models run
in tier 1; the 224×224-class models ride the ``slow`` marker like the
rest of the zoo suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baremetal.pipeline import bundle_cache_key
from repro.nvdla import Precision
from repro.serve import BundleCache, DeploymentSpec, InferenceService
from repro.store import BundleStore, serialize_bundle, sha256_hex

ZOO_CASES = [
    pytest.param("lenet5", id="lenet5"),
    pytest.param("resnet18", id="resnet18"),
    pytest.param("mobilenet", marks=pytest.mark.slow, id="mobilenet"),
    pytest.param("googlenet", marks=pytest.mark.slow, id="googlenet"),
    pytest.param("alexnet", marks=pytest.mark.slow, id="alexnet"),
    pytest.param("resnet50", marks=pytest.mark.slow, id="resnet50"),
]


@pytest.mark.parametrize("model", ZOO_CASES)
def test_store_round_trip_is_bit_identical(model, tmp_path):
    # Timing fidelity keeps the big-model containers (and build time)
    # manageable; the container covers program, commands, images and
    # results identically for both fidelities.
    store = BundleStore(tmp_path / "store")
    compiled = BundleCache().bundle_for(model, "nv_small", fidelity="timing")
    fresh_bytes = serialize_bundle(compiled)

    key = bundle_cache_key(model, "nv_small", Precision.INT8, "timing")
    store.put_bundle(key, compiled)
    loaded = store.get_bundle(key)

    assert loaded is not None
    assert loaded.artifact_digest() == compiled.artifact_digest()
    assert serialize_bundle(loaded) == fresh_bytes
    # The on-disk object *is* those bytes, filed under their own hash.
    entry = store.ls()[0]
    assert entry.object_digest == sha256_hex(fresh_bytes)


def test_store_loaded_bundle_serves_identical_outputs(tmp_path):
    """End to end: a service warmed purely from the store produces the
    same inference outputs as one that compiled from scratch."""
    store = BundleStore(tmp_path / "store")
    spec = DeploymentSpec("lenet5")

    cold = InferenceService(input_seed=7)
    cold.request(spec)
    baseline = cold.run_pending()[0]

    # Publish the compiled bundle, then serve from a fresh cache that
    # can only have gotten it from disk.
    bundle, _ = cold.bundle_for(spec)
    store.put_bundle(
        bundle_cache_key("lenet5", "nv_small", Precision.INT8, "functional"),
        bundle,
    )
    warmed = InferenceService(cache=BundleCache(store=store), input_seed=7)
    warmed.request(spec)
    from_store = warmed.run_pending()[0]

    assert warmed.cache.stats.store_hits == 1
    assert warmed.cache.stats.compiles == 0
    assert np.array_equal(from_store.output, baseline.output)
