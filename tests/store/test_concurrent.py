"""Concurrent access: racing writers converge, readers never tear.

The store's only write primitive is temp-file + ``os.replace`` into
place, so N writers racing on one digest key must end with exactly one
valid object (same content address for all of them), and a reader
polling throughout must only ever observe a clean miss or a fully
verified bundle — never an integrity error, never a torn file.
"""

from __future__ import annotations

import threading

from repro.errors import StoreIntegrityError
from repro.store import BundleStore, key_digest, sha256_hex, serialize_bundle


def test_racing_writers_one_valid_artifact(store, lenet_bundle, lenet_key):
    barrier = threading.Barrier(4)
    errors: list[Exception] = []

    def writer() -> None:
        try:
            barrier.wait()
            for _ in range(5):
                store.put_bundle(lenet_key, lenet_bundle)
        except Exception as exc:  # pragma: no cover - the assertion below
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    # Exactly one object file, bytes hashing to its own name.
    objects = list((store.root / "objects").glob("*/*"))
    assert len(objects) == 1
    assert sha256_hex(objects[0].read_bytes()) == objects[0].name
    # Exactly one ref, pointing at that object.
    assert len(store) == 1
    loaded = store.get_bundle(lenet_key)
    assert loaded is not None
    assert loaded.artifact_digest() == lenet_bundle.artifact_digest()
    # No half-written temp files left behind.
    assert not list(store.root.glob("**/.tmp-*"))


def test_reader_never_sees_torn_state(tmp_path, lenet_bundle, lenet_key):
    """A reader polling while a writer republishes in a loop sees only
    {clean miss, verified bundle} — atomic rename hides every
    intermediate state."""
    root = tmp_path / "race"
    writer_store = BundleStore(root)
    reader_store = BundleStore(root)
    expected = lenet_bundle.artifact_digest()
    stop = threading.Event()
    problems: list[str] = []

    def writer() -> None:
        for _ in range(25):
            writer_store.put_bundle(lenet_key, lenet_bundle)
        stop.set()

    def reader() -> None:
        seen_bundle = False
        while not stop.is_set() or not seen_bundle:
            try:
                bundle = reader_store.get_bundle(lenet_key)
            except StoreIntegrityError as exc:
                problems.append(f"torn read: {exc}")
                break
            if bundle is not None:
                seen_bundle = True
                if bundle.artifact_digest() != expected:
                    problems.append("wrong bundle returned")
                    break

    threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not problems


def test_distinct_keys_race_without_interference(store, lenet_bundle, lenet_key):
    """Writers on different keys share one object (identical content)
    but keep independent refs."""
    keys = [lenet_key[:-1] + (seed,) for seed in range(6)]
    barrier = threading.Barrier(len(keys))

    def writer(key: tuple) -> None:
        barrier.wait()
        store.put_bundle(key, lenet_bundle)

    threads = [threading.Thread(target=writer, args=(key,)) for key in keys]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(store) == len(keys)
    assert len(list((store.root / "objects").glob("*/*"))) == 1
    expected_digest = sha256_hex(serialize_bundle(lenet_bundle))
    for key in keys:
        assert store.ls()[0].object_digest == expected_digest
        loaded = store.get_bundle(key)
        assert loaded is not None and loaded.artifact_digest() == (
            lenet_bundle.artifact_digest()
        )
    ref_names = {path.stem for path in (store.root / "refs").glob("*.json")}
    assert ref_names == {key_digest(key) for key in keys}
