"""Concurrent access: racing writers converge, readers never tear.

The store's only write primitive is temp-file + ``os.replace`` into
place, so N writers racing on one digest key must end with exactly one
valid object (same content address for all of them), and a reader
polling throughout must only ever observe a clean miss or a fully
verified bundle — never an integrity error, never a torn file.
"""

from __future__ import annotations

import threading

from repro.errors import StoreIntegrityError
from repro.store import BundleStore, key_digest, sha256_hex, serialize_bundle


def test_racing_writers_one_valid_artifact(store, lenet_bundle, lenet_key):
    barrier = threading.Barrier(4)
    errors: list[Exception] = []

    def writer() -> None:
        try:
            barrier.wait()
            for _ in range(5):
                store.put_bundle(lenet_key, lenet_bundle)
        except Exception as exc:  # pragma: no cover - the assertion below
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    # Exactly one object file, bytes hashing to its own name.
    objects = list((store.root / "objects").glob("*/*"))
    assert len(objects) == 1
    assert sha256_hex(objects[0].read_bytes()) == objects[0].name
    # Exactly one ref, pointing at that object.
    assert len(store) == 1
    loaded = store.get_bundle(lenet_key)
    assert loaded is not None
    assert loaded.artifact_digest() == lenet_bundle.artifact_digest()
    # No half-written temp files left behind.
    assert not list(store.root.glob("**/.tmp-*"))


def test_reader_never_sees_torn_state(tmp_path, lenet_bundle, lenet_key):
    """A reader polling while a writer republishes in a loop sees only
    {clean miss, verified bundle} — atomic rename hides every
    intermediate state."""
    root = tmp_path / "race"
    writer_store = BundleStore(root)
    reader_store = BundleStore(root)
    expected = lenet_bundle.artifact_digest()
    stop = threading.Event()
    problems: list[str] = []

    def writer() -> None:
        for _ in range(25):
            writer_store.put_bundle(lenet_key, lenet_bundle)
        stop.set()

    def reader() -> None:
        seen_bundle = False
        while not stop.is_set() or not seen_bundle:
            try:
                bundle = reader_store.get_bundle(lenet_key)
            except StoreIntegrityError as exc:
                problems.append(f"torn read: {exc}")
                break
            if bundle is not None:
                seen_bundle = True
                if bundle.artifact_digest() != expected:
                    problems.append("wrong bundle returned")
                    break

    threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not problems


def test_distinct_keys_race_without_interference(store, lenet_bundle, lenet_key):
    """Writers on different keys share one object (identical content)
    but keep independent refs."""
    keys = [lenet_key[:-1] + (seed,) for seed in range(6)]
    barrier = threading.Barrier(len(keys))

    def writer(key: tuple) -> None:
        barrier.wait()
        store.put_bundle(key, lenet_bundle)

    threads = [threading.Thread(target=writer, args=(key,)) for key in keys]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(store) == len(keys)
    assert len(list((store.root / "objects").glob("*/*"))) == 1
    expected_digest = sha256_hex(serialize_bundle(lenet_bundle))
    for key in keys:
        assert store.ls()[0].object_digest == expected_digest
        loaded = store.get_bundle(key)
        assert loaded is not None and loaded.artifact_digest() == (
            lenet_bundle.artifact_digest()
        )
    ref_names = {path.stem for path in (store.root / "refs").glob("*.json")}
    assert ref_names == {key_digest(key) for key in keys}


def test_gc_sweep_never_deletes_a_concurrent_puts_object(
    store, lenet_bundle, lenet_key
):
    """gc racing a writer (object published, ref not yet linked) must
    not sweep the writer's object out from under it.

    The put primitive publishes object-then-ref; the sweep's mtime
    grace window is what keeps the window between those two renames
    safe.  A gc loop with grace runs against a put loop; every
    completed put must remain fully readable."""
    problems: list[str] = []
    stop = threading.Event()

    def collector() -> None:
        while not stop.is_set():
            # Default grace: fresh ref-less objects are publishes in
            # flight and must survive.
            store.gc(max_bytes=None, max_objects=None)

    def writer() -> None:
        try:
            for seed in range(20):
                key = lenet_key[:-1] + (seed,)
                store.put_bundle(key, lenet_bundle)
                loaded = store.get_bundle(key)
                if loaded is None:
                    problems.append(f"put {seed} vanished under gc")
                    return
        except Exception as exc:  # pragma: no cover - asserted below
            problems.append(f"writer died: {type(exc).__name__}: {exc}")
        finally:
            stop.set()

    threads = [threading.Thread(target=collector), threading.Thread(target=writer)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not problems
    # Every ref still points at a live, verifiable object.
    report = store.verify()
    torn = [p for p in report.problems if "unreferenced" not in p[1]]
    assert not torn, torn


def test_gc_zero_grace_reproduces_the_put_race_window(
    tmp_path, lenet_bundle, lenet_key
):
    """The interleaving the grace window exists for, played by hand:
    object published, gc sweeps, ref lands — with grace 0 the ref
    dangles; with the default grace the object survives."""
    from repro.store import serialize_bundle, sha256_hex

    blob = serialize_bundle(lenet_bundle)
    digest = sha256_hex(blob)

    def object_then_gc(store: BundleStore) -> bool:
        # Step 1: the racing writer publishes its object...
        path = store.root / "objects" / digest[:2] / digest
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        # Step 2: ...gc's unreferenced sweep runs before the writer
        # gets to link its ref.
        store.gc()
        return path.exists()

    # With no grace the sweep deletes the object mid-put — the writer's
    # ref (step 3) would dangle, the bug this window closes.
    racy = BundleStore(tmp_path / "racy", gc_grace_seconds=0.0)
    assert not object_then_gc(racy)
    # With the default grace the fresh object survives and the ref that
    # lands afterwards resolves to a fully verified bundle.
    safe = BundleStore(tmp_path / "safe")
    assert object_then_gc(safe)
    safe.put_bundle(lenet_key, lenet_bundle)
    assert safe.get_bundle(lenet_key) is not None
