"""Shared fixtures for the persistent-store suites.

One module-scoped lenet5 bundle (cheap: timing fidelity, no DBB
payloads) feeds every serialization/corruption test, so the suite pays
the offline flow once.
"""

from __future__ import annotations

import pytest

from repro.baremetal.pipeline import BaremetalBundle, bundle_cache_key
from repro.serve.cache import BundleCache
from repro.store import BundleStore


@pytest.fixture(scope="session")
def lenet_bundle() -> BaremetalBundle:
    return BundleCache().bundle_for("lenet5", "nv_small", fidelity="timing")


@pytest.fixture(scope="session")
def lenet_key() -> tuple:
    from repro.nvdla.config import Precision

    return bundle_cache_key("lenet5", "nv_small", Precision.INT8, "timing")


@pytest.fixture
def store(tmp_path) -> BundleStore:
    return BundleStore(tmp_path / "store")
