"""Corruption injection: every tamper is a typed refusal, never bad data.

Each test damages the on-disk artifact a different way — flipped
payload byte, flipped index byte, truncation, swapped objects, torn
ref, dangling ref, forged magic/version — and asserts the store raises
:class:`StoreIntegrityError` instead of returning a silently wrong
bundle, and that a store-backed :class:`BundleCache` falls back to
recompilation.
"""

from __future__ import annotations

import pytest

from repro.errors import StoreIntegrityError
from repro.serve.cache import BundleCache
from repro.store import key_digest, read_container, serialize_bundle


def _object_path(store, key):
    ref_path = store.root / "refs" / f"{key_digest(key)}.json"
    import json

    digest = json.loads(ref_path.read_text())["object"]
    return store.root / "objects" / digest[:2] / digest


def _flip_byte(path, offset: int) -> None:
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


@pytest.fixture
def loaded_store(store, lenet_bundle, lenet_key):
    store.put_bundle(lenet_key, lenet_bundle)
    return store


def test_flipped_payload_byte_refused(loaded_store, lenet_key):
    path = _object_path(loaded_store, lenet_key)
    _flip_byte(path, path.stat().st_size - 10)  # deep in the payload
    with pytest.raises(StoreIntegrityError):
        loaded_store.get_bundle(lenet_key)
    assert loaded_store.stats.integrity_failures == 1


def test_flipped_index_byte_refused(loaded_store, lenet_key):
    _flip_byte(_object_path(loaded_store, lenet_key), 16)  # inside the index
    with pytest.raises(StoreIntegrityError):
        loaded_store.get_bundle(lenet_key)


def test_every_single_flipped_byte_in_the_header_is_caught(
    loaded_store, lenet_key
):
    """No byte of magic/version/length survives unnoticed."""
    path = _object_path(loaded_store, lenet_key)
    pristine = path.read_bytes()
    for offset in range(10):
        _flip_byte(path, offset)
        with pytest.raises(StoreIntegrityError):
            loaded_store.get_bundle(lenet_key)
        path.write_bytes(pristine)
    assert loaded_store.get_bundle(lenet_key) is not None  # restored


def test_truncated_artifact_refused(loaded_store, lenet_key):
    path = _object_path(loaded_store, lenet_key)
    blob = path.read_bytes()
    for keep in (len(blob) // 2, 64, 9, 0):
        path.write_bytes(blob[:keep])
        with pytest.raises(StoreIntegrityError):
            loaded_store.get_bundle(lenet_key)


def test_swapped_artifacts_refused(loaded_store, lenet_bundle, lenet_key):
    """An object replaced by a different (valid!) container is refused:
    its bytes no longer hash to the ref's content address."""
    other_key = lenet_key[:-1] + (4242,)
    loaded_store.put_bundle(other_key, lenet_bundle)
    path_a = _object_path(loaded_store, lenet_key)
    # Both keys map to the same object (same content), so fabricate a
    # *different* container for the swap.
    import dataclasses

    tweaked = dataclasses.replace(lenet_bundle, notes={"swapped": True})
    path_a.write_bytes(serialize_bundle(tweaked))
    with pytest.raises(StoreIntegrityError):
        loaded_store.get_bundle(lenet_key)


def test_dangling_ref_refused(loaded_store, lenet_key):
    _object_path(loaded_store, lenet_key).unlink()
    with pytest.raises(StoreIntegrityError):
        loaded_store.get_bundle(lenet_key)
    # contains() treats it as absent rather than lying.
    assert not loaded_store.contains(lenet_key)


def test_torn_ref_refused(loaded_store, lenet_key):
    ref_path = loaded_store.root / "refs" / f"{key_digest(lenet_key)}.json"
    ref_path.write_bytes(ref_path.read_bytes()[:10])
    with pytest.raises(StoreIntegrityError):
        loaded_store.get_bundle(lenet_key)


def test_wrong_kind_object_refused(loaded_store, lenet_bundle, lenet_key):
    """A loadable container under a bundle ref must not deserialize."""
    from repro.store import serialize_loadable

    _object_path(loaded_store, lenet_key).write_bytes(
        serialize_loadable(lenet_bundle.loadable)
    )
    with pytest.raises(StoreIntegrityError):
        loaded_store.get_bundle(lenet_key)


def test_error_message_names_the_file(loaded_store, lenet_key):
    path = _object_path(loaded_store, lenet_key)
    _flip_byte(path, path.stat().st_size - 1)
    with pytest.raises(StoreIntegrityError) as excinfo:
        loaded_store.get_bundle(lenet_key)
    assert str(path) in str(excinfo.value)
    assert excinfo.value.path == str(path)


def test_verify_reports_instead_of_raising(loaded_store, lenet_key):
    path = _object_path(loaded_store, lenet_key)
    _flip_byte(path, path.stat().st_size - 1)
    report = loaded_store.verify()
    assert not report.clean
    assert report.ok == 0 and len(report.problems) == 1
    assert "BAD" in report.render()


def test_cache_falls_back_to_recompilation(loaded_store, lenet_bundle, lenet_key):
    """The end-to-end promise: a corrupt store never breaks serving —
    the cache recompiles, counts the failure, and the fresh bundle is
    bit-identical to the original."""
    path = _object_path(loaded_store, lenet_key)
    _flip_byte(path, path.stat().st_size - 5)
    cache = BundleCache(store=loaded_store)
    bundle = cache.bundle_for("lenet5", "nv_small", fidelity="timing")
    assert bundle.artifact_digest() == lenet_bundle.artifact_digest()
    assert cache.stats.store_errors == 1
    assert cache.stats.compiles == 1
    assert cache.stats.store_hits == 0
    # The recompile overwrote the damage: the store heals.
    healed = BundleCache(store=loaded_store)
    again = healed.bundle_for("lenet5", "nv_small", fidelity="timing")
    assert healed.stats.store_hits == 1 and healed.stats.compiles == 0
    assert again.artifact_digest() == lenet_bundle.artifact_digest()


def test_corrupt_section_is_not_silently_decoded(lenet_bundle):
    """read_container itself (not just the store) rejects tampering —
    flip one byte in every 1 KiB stride of a real container."""
    blob = bytearray(serialize_bundle(lenet_bundle))
    for offset in range(0, len(blob), 1024):
        blob[offset] ^= 0x01
        with pytest.raises(StoreIntegrityError):
            read_container(bytes(blob))
        blob[offset] ^= 0x01  # restore
    read_container(bytes(blob))  # pristine again parses
