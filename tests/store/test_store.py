"""BundleStore: round trips, content addressing, atomicity, LRU gc."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import StoreError
from repro.store import (
    BundleStore,
    key_digest,
    serialize_bundle,
    serialize_loadable,
    sha256_hex,
)


def _no_turds(store: BundleStore) -> bool:
    return not list(store.root.glob("**/.tmp-*"))


def test_put_get_round_trip_is_bit_identical(store, lenet_bundle, lenet_key):
    digest = store.put_bundle(lenet_key, lenet_bundle)
    loaded = store.get_bundle(lenet_key)
    assert loaded is not None
    assert loaded.artifact_digest() == lenet_bundle.artifact_digest()
    # Byte-identical reserialization: the round trip lost nothing.
    assert serialize_bundle(loaded) == serialize_bundle(lenet_bundle)
    # The object file's name IS its content hash.
    object_path = store.root / "objects" / digest[:2] / digest
    assert sha256_hex(object_path.read_bytes()) == digest
    assert store.stats.writes == 1 and store.stats.hits == 1


def test_absent_key_is_a_clean_miss(store):
    assert store.get_bundle(("no", "such", "deployment")) is None
    assert store.stats.misses == 1
    assert not store.contains(("no", "such", "deployment"))


def test_contains_and_discard(store, lenet_bundle, lenet_key):
    assert not store.contains(lenet_key)
    store.put_bundle(lenet_key, lenet_bundle)
    assert store.contains(lenet_key)
    assert store.discard(lenet_key)
    assert not store.contains(lenet_key)
    assert not store.discard(lenet_key)  # second discard is a no-op
    # The unreferenced object went with its last ref.
    assert not list((store.root / "objects").glob("*/*"))


def test_identical_content_under_two_keys_shares_one_object(
    store, lenet_bundle, lenet_key
):
    other_key = lenet_key[:-1] + (9999,)
    a = store.put_bundle(lenet_key, lenet_bundle)
    b = store.put_bundle(other_key, lenet_bundle)
    assert a == b  # content-addressed: same bytes, same object
    assert len(store) == 2  # but two refs
    assert len(list((store.root / "objects").glob("*/*"))) == 1
    # Dropping one key keeps the object alive for the other.
    store.discard(lenet_key)
    assert store.get_bundle(other_key) is not None


def test_writes_leave_no_temp_files(store, lenet_bundle, lenet_key):
    store.put_bundle(lenet_key, lenet_bundle)
    store.get_bundle(lenet_key)  # touches the ref (atomic rewrite)
    assert _no_turds(store)


def test_ls_orders_by_recency_and_renders(store, lenet_bundle, lenet_key):
    key_b = lenet_key[:-1] + (1,)
    store.put_bundle(lenet_key, lenet_bundle)
    store.put_bundle(key_b, lenet_bundle)
    store.get_bundle(lenet_key)  # most recently used now
    entries = store.ls()
    assert [e.key_digest for e in entries] == [
        key_digest(lenet_key), key_digest(key_b)
    ]
    assert "lenet5/nv_small/int8/timing" in entries[0].render()


def test_gc_evicts_least_recently_used_first(store, lenet_bundle, lenet_key):
    keys = [lenet_key[:-1] + (seed,) for seed in (1, 2, 3)]
    for key in keys:
        store.put_bundle(key, lenet_bundle)
    store.get_bundle(keys[0])  # refresh the oldest
    evicted = store.gc(max_objects=2)
    assert [e.key_digest for e in evicted] == [key_digest(keys[1])]
    assert store.contains(keys[0]) and store.contains(keys[2])
    assert store.stats.evictions == 1


def _backdate(path, seconds: float = 3600.0) -> None:
    """Age a file past any gc grace window."""
    stamp = path.stat().st_mtime - seconds
    os.utime(path, (stamp, stamp))


def test_gc_size_cap_and_orphan_sweep(store, lenet_bundle, lenet_key):
    store.put_bundle(lenet_key, lenet_bundle)
    # Fabricate an old orphan object and a crashed writer's temp file.
    orphan = store.root / "objects" / "zz" / ("zz" * 32)
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_bytes(b"orphan")
    _backdate(orphan)
    turd = store.root / "refs" / ".tmp-dead"
    turd.write_bytes(b"torn")
    _backdate(turd)
    evicted = store.gc(max_bytes=1)  # cap below one artifact
    assert len(evicted) == 1 and len(store) == 0
    assert not orphan.exists() and not turd.exists()


def test_gc_grace_spares_fresh_unreferenced_files(store, lenet_bundle, lenet_key):
    """A just-written ref-less object (a put in flight publishes
    object-then-ref) and a just-created temp file must survive the
    sweep until the grace window has passed."""
    fresh_orphan = store.root / "objects" / "zz" / ("zz" * 32)
    fresh_orphan.parent.mkdir(parents=True, exist_ok=True)
    fresh_orphan.write_bytes(b"publish in flight")
    fresh_turd = store.root / "refs" / ".tmp-live-writer"
    fresh_turd.write_bytes(b"half written")
    assert store.gc() == []
    assert fresh_orphan.exists() and fresh_turd.exists()
    # Once aged past the window, the same sweep collects both...
    _backdate(fresh_orphan)
    _backdate(fresh_turd)
    store.gc()
    assert not fresh_orphan.exists() and not fresh_turd.exists()
    # ...and cap-driven eviction never waits: the store unlinked the
    # ref itself, so the object is garbage regardless of age.
    store.put_bundle(lenet_key, lenet_bundle)
    store.gc(max_objects=None, max_bytes=1)
    assert len(store) == 0
    assert not list((store.root / "objects").glob("*/*"))


def test_capacity_enforced_on_put(tmp_path, lenet_bundle, lenet_key):
    store = BundleStore(tmp_path / "capped", max_objects=1)
    store.put_bundle(lenet_key, lenet_bundle)
    store.put_bundle(lenet_key[:-1] + (1,), lenet_bundle)
    assert len(store) == 1
    assert store.stats.evictions == 1
    assert store.contains(lenet_key[:-1] + (1,))  # newest survives


def test_verify_clean_store(store, lenet_bundle, lenet_key):
    store.put_bundle(lenet_key, lenet_bundle)
    report = store.verify()
    assert report.clean and report.ok == 1
    assert "1 ok" in report.render()


def test_verify_flags_unreferenced_objects(store, lenet_bundle, lenet_key):
    store.put_bundle(lenet_key, lenet_bundle)
    (store.root / "objects" / "aa").mkdir(parents=True, exist_ok=True)
    (store.root / "objects" / "aa" / ("aa" * 32)).write_bytes(b"stray")
    report = store.verify()
    assert not report.clean
    assert any("unreferenced" in reason for _, reason in report.problems)


def test_layout_version_guard(tmp_path):
    root = tmp_path / "future"
    BundleStore(root)
    (root / "store.json").write_text(json.dumps({"layout": 999}))
    with pytest.raises(StoreError):
        BundleStore(root)


def test_invalid_caps_rejected(tmp_path):
    with pytest.raises(StoreError):
        BundleStore(tmp_path / "x", max_bytes=0)
    with pytest.raises(StoreError):
        BundleStore(tmp_path / "y", max_objects=-1)


def test_key_digest_is_stable_and_order_sensitive():
    key = ("lenet5", "nv_small", "int8", "timing", "defaults:int8", "defaults", 2024)
    assert key_digest(key) == key_digest(tuple(key))
    assert key_digest(key) != key_digest(key[::-1])
    assert len(key_digest(key)) == 64


def test_loadable_round_trip(store, lenet_bundle):
    loadable = lenet_bundle.loadable
    key = ("loadable", loadable.network, loadable.config, loadable.precision.value)
    store.put_loadable(key, loadable)
    loaded = store.get_loadable(key)
    assert loaded is not None
    assert loaded.to_bytes() == loadable.to_bytes()
    assert serialize_loadable(loaded) == serialize_loadable(loadable)


def test_store_survives_reopen(tmp_path, lenet_bundle, lenet_key):
    root = tmp_path / "persistent"
    BundleStore(root).put_bundle(lenet_key, lenet_bundle)
    # A brand-new process would construct a fresh handle over the same
    # directory — everything must still verify and load.
    reopened = BundleStore(root)
    assert len(reopened) == 1
    loaded = reopened.get_bundle(lenet_key)
    assert loaded is not None
    assert loaded.artifact_digest() == lenet_bundle.artifact_digest()


def test_ref_touch_updates_last_used(store, lenet_bundle, lenet_key):
    store.put_bundle(lenet_key, lenet_bundle)
    before = store.ls()[0].last_used
    store.get_bundle(lenet_key)
    assert store.ls()[0].last_used >= before
    ref = json.loads(
        (store.root / "refs" / f"{key_digest(lenet_key)}.json").read_text()
    )
    assert ref["object"] == store.ls()[0].object_digest
    assert os.path.exists(store.root / "objects" / ref["object"][:2] / ref["object"])
