"""Sparse memory, DRAM timing, BRAM and .mem loading."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryError_
from repro.mem import Bram, Dram, DramTiming, SparseMemory
from repro.bus.types import AccessType, Transfer


# ----------------------------------------------------------------------
# SparseMemory.
# ----------------------------------------------------------------------


def test_sparse_read_unwritten_returns_fill():
    memory = SparseMemory(1024, fill=0xAB)
    assert memory.read(100, 4) == b"\xab" * 4


def test_sparse_rw_roundtrip_across_pages():
    memory = SparseMemory(1 << 20)
    blob = bytes(range(256)) * 512  # 128 KiB spanning pages
    memory.write(0xFF00, blob)  # crosses the 64 KiB page boundary
    assert memory.read(0xFF00, len(blob)) == blob


def test_sparse_bounds_checked():
    memory = SparseMemory(128)
    with pytest.raises(MemoryError_):
        memory.read(120, 16)
    with pytest.raises(MemoryError_):
        memory.write(-1, b"\x00")


def test_sparse_scalar_accessors():
    memory = SparseMemory(64)
    memory.write_u32(0, 0xDEADBEEF)
    memory.write_u16(8, 0x1234)
    memory.write_u8(12, 0x7F)
    memory.write_u64(16, 0x1122334455667788)
    assert memory.read_u32(0) == 0xDEADBEEF
    assert memory.read_u16(8) == 0x1234
    assert memory.read_u8(12) == 0x7F
    assert memory.read_u64(16) == 0x1122334455667788


def test_sparse_numpy_arrays():
    memory = SparseMemory(4096)
    array = np.arange(100, dtype=np.int32)
    memory.write_array(16, array)
    back = memory.read_array(16, 100, np.int32)
    assert np.array_equal(array, back)


def test_sparse_resident_is_lazy():
    memory = SparseMemory(1 << 30)
    assert memory.resident_bytes == 0
    memory.write_u8(0x10000000, 1)
    assert memory.resident_bytes == 1 << 16  # one page


def test_touched_ranges_coalesce():
    memory = SparseMemory(1 << 20)
    memory.write_u8(0, 1)
    memory.write_u8((1 << 16) + 5, 1)  # adjacent page
    memory.write_u8(5 << 16, 1)  # distant page
    ranges = memory.touched_ranges()
    assert len(ranges) == 2
    assert ranges[0] == (0, 2 << 16)


def test_clear_resets_content():
    memory = SparseMemory(256)
    memory.write_u32(0, 7)
    memory.clear()
    assert memory.read_u32(0) == 0


@given(st.binary(min_size=1, max_size=1024), st.integers(0, 1 << 17))
def test_sparse_roundtrip_property(blob, address):
    memory = SparseMemory(1 << 18)
    if address + len(blob) > memory.size:
        address = memory.size - len(blob)
    memory.write(address, blob)
    assert memory.read(address, len(blob)) == blob


# ----------------------------------------------------------------------
# DRAM.
# ----------------------------------------------------------------------


def test_dram_transfer_latency_includes_controller():
    dram = Dram(size=1 << 20)
    reply = dram.read(0x100)
    assert reply.cycles >= dram.timing.controller_latency


def test_dram_row_hit_cheaper_than_miss():
    timing = DramTiming(row_hit_extra=0, row_miss_extra=8)
    dram = Dram(size=1 << 20, timing=timing)
    first = dram.read(0x0).cycles  # opens the row
    second = dram.read(0x8).cycles  # same row
    far = dram.read(timing.row_bytes * timing.banks).cycles  # same bank, new row
    assert second < first
    assert far > second
    assert dram.stats.row_hits >= 1
    assert dram.stats.row_misses >= 2


def test_dram_stream_moves_data_and_prices_it():
    dram = Dram(size=1 << 20)
    blob = bytes(range(256)) * 16
    cycles = dram.stream_write(0x1000, blob)
    data, read_cycles = dram.stream_read(0x1000, len(blob))
    assert data == blob
    assert cycles > 0 and read_cycles > 0


def test_dram_streaming_beats_random_access():
    dram = Dram(size=1 << 22)
    nbytes = 16 * 1024
    _, stream_cycles = dram.stream_read(0, nbytes)
    # The same 16 KiB fetched as single-word reads pays the controller
    # latency per access instead of per burst.
    word_cycles = sum(dram.read(i * 4).cycles for i in range(nbytes // 4))
    assert stream_cycles < word_cycles / 2


def test_dram_effective_bandwidth_below_peak():
    dram = Dram(size=1 << 22)
    effective = dram.effective_stream_bandwidth()
    assert 0 < effective < dram.peak_bandwidth_bytes_per_cycle()


def test_dram_width_affects_bandwidth():
    narrow = Dram(size=1 << 20, timing=DramTiming(data_width_bits=32))
    wide = Dram(size=1 << 20, timing=DramTiming(data_width_bits=64))
    assert wide.effective_stream_bandwidth() > narrow.effective_stream_bandwidth()


def test_dram_write_transfer():
    dram = Dram(size=1 << 16)
    dram.transfer(
        Transfer(address=0x40, size=4, access=AccessType.WRITE, data=b"\x01\x02\x03\x04")
    )
    assert dram.storage.read(0x40, 4) == b"\x01\x02\x03\x04"
    assert dram.stats.bytes_written == 4


# ----------------------------------------------------------------------
# BRAM.
# ----------------------------------------------------------------------


def test_bram_single_cycle():
    bram = Bram(1 << 12)
    assert bram.read(0).cycles == 1


def test_bram_read_only_mode():
    bram = Bram(1 << 12, read_only=True)
    with pytest.raises(MemoryError_):
        bram.write(0, 1)
    bram.load_image(b"\x01\x02\x03\x04")  # loader bypasses the latch
    assert bram.read(0).value() == 0x04030201


def test_bram_mem_file_roundtrip():
    bram = Bram(1 << 12)
    source = "@00000010\nDEADBEEF\n12345678\n"
    loaded = bram.load_mem_file(source)
    assert loaded == 2
    assert bram.storage.read_u32(0x40) == 0xDEADBEEF
    dumped = bram.dump_mem_file(8, base=0x40)
    reloaded = Bram(1 << 12)
    reloaded.load_mem_file(dumped)
    assert reloaded.storage.read_u32(0x40) == 0xDEADBEEF
    assert reloaded.storage.read_u32(0x44) == 0x12345678


def test_bram_mem_file_comments_ignored():
    bram = Bram(1 << 12)
    assert bram.load_mem_file("// header\n@00000000\nCAFEF00D // trailing\n") == 1
    assert bram.storage.read_u32(0) == 0xCAFEF00D


def test_bram_dump_requires_word_multiple():
    bram = Bram(1 << 12)
    with pytest.raises(MemoryError_):
        bram.dump_mem_file(6)
