"""Fused-vs-unfused differential lockdown across the zoo.

Every zoo model compiles at all three fusion tiers and must satisfy,
on both hardware configs and both execution tiers:

- **descriptor ≡ graph, bit-identical** — descriptor-chain fusion
  streams the same SDP result through the same PDP kernel, so pulling
  the pool on-chip may not change a single output bit;
- **descriptor vs off** — bit-identical for eltwise-free models
  (ReLU de-absorption commutes with the monotone requantisation);
  residual models (resnet18/resnet50) differ only by ERDMA operand
  rounding in the standalone eltwise ops — banded per model (see
  ``ELTWISE_BANDS``) since the per-add 6 % bound
  ``tests/integration/test_eltwise_fusion.py`` establishes compounds
  with serial residual depth;
- **timing** — the fused schedule costs strictly fewer accelerator
  cycles than the unfused one on every model that fuses anything.

The fast tier covers the whole model × config matrix; the
cycle-accurate tier locks the calibration models on both configs
(the full cycle-accurate sweep lives in ``benchmarks/bench_fusion.py``).

To keep the matrix affordable, bundles are generated with
``fidelity="timing"`` — skipping the generation-time VP's tensor
computation and DBB trace logging, which for AlexNet-class models is
the difference between seconds and minutes — and then re-tagged
functional.  The CSB trace (and therefore the register program) is
identical either way; the preload image becomes the compiler's own
weight blob, and the input tensor is packed explicitly from the same
seed-2024 draw the functional flow bakes in.  Both executors under
test compute real tensors themselves, so the differential loses
nothing; ``test_timing_shortcut_is_sound`` proves the shortcut
produces the same bits as the full functional flow.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.baremetal import generate_baremetal
from repro.compiler import CompileOptions
from repro.core import FastPathExecutor, Soc
from repro.core.calibration import CalibrationTable
from repro.nn.quantize import calibrate_network
from repro.nn.zoo import ZOO
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision
from repro.nvdla.fastpath import pack_input

FUSION_MODES = ("off", "graph", "descriptor")
#: config name -> (hardware, paper precision, memory bus width)
CONFIGS = {
    "nv_small": (NV_SMALL, Precision.INT8, 32),
    "nv_full": (NV_FULL, Precision.FP16, 64),
}
#: models whose residual adds make `off` differ by ERDMA rounding,
#: and the max-|delta| band (fraction of the output scale) each gets.
#: resnet18's 8 adds stay within the single-add 6 % bound; resnet50's
#: 16 *serial* bottleneck adds compound each operand-requant rounding
#: through the downstream convs (measured ~25 % max, ~5 % mean, output
#: correlation ≥ 0.997), so it gets a wider band plus a correlation
#: floor that a genuine miscompile — wrong surface, wrong scale —
#: would break immediately.
ELTWISE_BANDS = {"resnet18": 0.06, "resnet50": 0.30}
MIN_OFF_CORRELATION = 0.99

ZOO_CASES = [
    pytest.param("lenet5", id="lenet5"),
    pytest.param("resnet18", id="resnet18"),
    pytest.param("mobilenet", marks=pytest.mark.slow, id="mobilenet"),
    pytest.param("googlenet", marks=pytest.mark.slow, id="googlenet"),
    pytest.param("alexnet", marks=pytest.mark.slow, id="alexnet"),
    pytest.param("resnet50", marks=pytest.mark.slow, id="resnet50"),
]

CONFIG_CASES = [
    pytest.param("nv_small", id="nv_small"),
    pytest.param("nv_full", marks=pytest.mark.slow, id="nv_full"),
]


@functools.lru_cache(maxsize=None)
def _calibration(model: str) -> CalibrationTable:
    """One deterministic INT8 calibration per model, shared by every
    fusion mode and config so quantisation scales are identical and
    the differential isolates the fusion decision alone.  Two samples
    matches ``CompileOptions.calibration_samples``' default, so the
    scales equal what an uncalibrated ``compile_network`` would fit."""
    return calibrate_network(ZOO[model](), samples=2)


@functools.lru_cache(maxsize=None)
def _input(model: str) -> np.ndarray:
    """The exact input the functional flow would bake into the bundle
    (``generate_baremetal``'s seed-2024 uniform draw)."""
    rng = np.random.default_rng(2024)
    return rng.uniform(-1.0, 1.0, size=ZOO[model]().input_shape).astype(np.float32)


@functools.lru_cache(maxsize=None)
def _bundle(model: str, config_name: str, mode: str):
    """Compile one (model, config, fusion-mode) bundle, memoised so the
    fast-tier and cycle-accurate tests share compilations."""
    config, precision, _ = CONFIGS[config_name]
    options = CompileOptions(
        precision=precision,
        fusion=mode,
        calibration=_calibration(model) if precision is Precision.INT8 else None,
    )
    bundle = generate_baremetal(
        ZOO[model](),
        config,
        precision=precision,
        fidelity="timing",
        compile_options=options,
    )
    # Re-tag functional: the executors under test compute the tensors
    # themselves (see module docstring); without the tag they would
    # skip computation and every bit-identity assertion would
    # vacuously compare None with None.
    bundle.fidelity = "functional"
    return bundle


def _fast_run(bundle, config_name: str, model: str):
    """Functional fast-tier run; returns (output, op_cycles)."""
    config, _, bus = CONFIGS[config_name]
    table = CalibrationTable()
    executor = FastPathExecutor(
        config, calibration=table, memory_bus_width_bits=bus
    )
    estimate = executor.estimate(bundle)
    # Differential runs compare fusion modes *within* the fast tier, so
    # a synthetic admission (estimate as its own reference) is enough
    # to unlock execution; absolute fast-vs-SoC accuracy is gated by
    # tests/nvdla/test_fastpath_differential.py.
    table.admit(
        bundle.network,
        bundle.config,
        bundle.precision,
        estimate.total_cycles,
        estimate.total_cycles,
        memory_bus_width_bits=bus,
    )
    result = executor.run(bundle, input_image=_input(model))
    assert result.ok
    assert result.output is not None
    return result.output, estimate.op_cycles


def _soc_run(bundle, config_name: str, model: str):
    """Cycle-accurate SoC run with the input packed into DRAM."""
    config, _, bus = CONFIGS[config_name]
    soc = Soc(config, memory_bus_width_bits=bus)
    soc.load_bundle(bundle)
    address, packed = pack_input(bundle.loadable, config, _input(model))
    soc.preload_dram(address, packed)
    result = soc.run_inference(bundle)
    assert result.ok, f"{model}/{config_name}: SoC run failed"
    assert result.output is not None
    return result


def _assert_off_band(model: str, fused: np.ndarray, off: np.ndarray) -> None:
    if model in ELTWISE_BANDS:
        band = ELTWISE_BANDS[model]
        scale = np.abs(off).max() + 1e-9
        delta = np.abs(fused - off).max()
        assert delta <= band * scale, (
            f"{model}: descriptor vs off delta {delta:.4g} exceeds "
            f"{band:.0%} of scale {scale:.4g}"
        )
        corr = np.corrcoef(fused.ravel(), off.ravel())[0, 1]
        assert corr >= MIN_OFF_CORRELATION, (
            f"{model}: descriptor vs off correlation {corr:.4f} below "
            f"{MIN_OFF_CORRELATION}"
        )
    else:
        assert np.array_equal(fused, off), (
            f"{model}: eltwise-free model must be bit-identical across tiers"
        )


@pytest.mark.parametrize("config_name", CONFIG_CASES)
@pytest.mark.parametrize("model", ZOO_CASES)
def test_fast_tier_fusion_differential(model, config_name):
    runs = {}
    cycles = {}
    for mode in FUSION_MODES:
        bundle = _bundle(model, config_name, mode)
        runs[mode], cycles[mode] = _fast_run(bundle, config_name, model)

    assert np.array_equal(runs["descriptor"], runs["graph"]), (
        f"{model}/{config_name}: descriptor fusion changed output bits"
    )
    _assert_off_band(model, runs["descriptor"], runs["off"])

    # Cycle ordering: fusing can only remove work from the schedule.
    assert cycles["descriptor"] <= cycles["graph"] <= cycles["off"]
    assert cycles["descriptor"] < cycles["off"], (
        f"{model}/{config_name}: fusion saved no cycles "
        f"({cycles['descriptor']:,} vs {cycles['off']:,})"
    )


@pytest.mark.parametrize("config_name", CONFIG_CASES)
@pytest.mark.parametrize(
    "model",
    [
        pytest.param("lenet5", id="lenet5"),
        pytest.param("resnet18", marks=pytest.mark.slow, id="resnet18"),
    ],
)
def test_cycle_accurate_fusion_differential(model, config_name):
    results = {
        mode: _soc_run(_bundle(model, config_name, mode), config_name, model)
        for mode in FUSION_MODES
    }
    assert np.array_equal(
        results["descriptor"].output, results["graph"].output
    ), f"{model}/{config_name}: descriptor fusion changed output bits on the SoC"
    _assert_off_band(model, results["descriptor"].output, results["off"].output)
    assert results["descriptor"].cycles < results["off"].cycles, (
        f"{model}/{config_name}: fused SoC run not cheaper "
        f"({results['descriptor'].cycles:,} vs {results['off'].cycles:,})"
    )


def test_timing_shortcut_is_sound():
    """The timing-generated, re-tagged bundle this module runs on must
    be indistinguishable from the full functional flow: identical
    register program, and bit-identical outputs on both tiers."""
    functional = generate_baremetal(
        ZOO["lenet5"](),
        NV_SMALL,
        compile_options=CompileOptions(
            precision=Precision.INT8, calibration=_calibration("lenet5")
        ),
    )
    shortcut = _bundle("lenet5", "nv_small", "descriptor")

    assert [c.render() for c in functional.commands] == [
        c.render() for c in shortcut.commands
    ]
    assert functional.program.to_bytes() == shortcut.program.to_bytes()

    fast_functional, _ = _fast_run(functional, "nv_small", "lenet5")
    fast_shortcut, _ = _fast_run(shortcut, "nv_small", "lenet5")
    np.testing.assert_array_equal(fast_functional, fast_shortcut)
    # The functional bundle bakes the same seed-2024 input into its
    # images, so its VP-traced output must match the executors too.
    np.testing.assert_array_equal(
        fast_shortcut, functional.vp_result.output
    )

    soc_functional = _soc_run(functional, "nv_small", "lenet5")
    soc_shortcut = _soc_run(shortcut, "nv_small", "lenet5")
    np.testing.assert_array_equal(soc_functional.output, soc_shortcut.output)
    assert soc_functional.cycles == soc_shortcut.cycles
