"""Fusion planning: pruning, BN/Scale folding, concat aliasing,
descriptor-chain collapse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import CompileOptions, compile_network
from repro.compiler.fusion import (
    FusionPlan,
    fold_batchnorm_scale,
    fuse_descriptor_chains,
    fused_output_blob,
    plan_concats,
    plan_fusion,
    prune_to_output,
)
from repro.errors import CompilerError
from repro.nn.graph import Network
from repro.nn.layers import PoolKind
from repro.nn.zoo import googlenet
from repro.nvdla import NV_SMALL


def test_prune_drops_unreachable_layers():
    net = Network("p")
    net.add_input("data", (1, 4, 4))
    keep = net.add_relu("keep", "data")
    net.add_relu("dead", "data")  # side output, not marked
    net.mark_output(keep)
    layers = prune_to_output(net)
    assert [l.name for l in layers] == ["data", "keep"]


def test_prune_drops_googlenet_aux_heads():
    net = googlenet(include_aux=True)
    pruned = prune_to_output(net)
    names = {l.name for l in pruned}
    assert not any(name.startswith("loss1") or name.startswith("loss2") for name in names)
    assert "loss3_classifier" in names


def test_fusion_absorbs_bn_scale_relu(residual_net):
    layers = prune_to_output(residual_net)
    plan = plan_fusion(residual_net, layers)
    absorbed = [l.name for l in plan.absorbed["conv1"]]
    assert absorbed == ["bn1", "scale1", "relu1"]
    assert fused_output_blob(residual_net.layers[1], plan) == "relu1"


def test_fusion_stops_at_branch_points(residual_net):
    """conv2's Scale output feeds the eltwise, so ReLU after eltwise
    belongs to the eltwise, not the conv."""
    layers = prune_to_output(residual_net)
    plan = plan_fusion(residual_net, layers)
    conv2_absorbed = [l.name for l in plan.absorbed["conv2"]]
    assert conv2_absorbed == ["bn2", "scale2"]
    assert [l.name for l in plan.absorbed["add"]] == ["relu2"]


def test_fusion_does_not_absorb_multi_consumer_blob():
    net = Network("branch")
    net.add_input("data", (1, 4, 4))
    conv = net.add_conv("conv", "data", num_output=2, kernel_size=1)
    relu = net.add_relu("relu", conv)
    a = net.add_conv("a", relu, num_output=2, kernel_size=1)
    b = net.add_conv("b", relu, num_output=2, kernel_size=1)
    net.add_eltwise("sum", a, b)
    plan = plan_fusion(net, prune_to_output(net))
    # relu fuses into conv (sole consumer of conv's output)...
    assert [l.name for l in plan.absorbed.get("conv", [])] == ["relu"]
    # ...but nothing fuses into a/b since 'sum' is an Eltwise, and the
    # eltwise absorbs nothing (no trailing relu).
    assert "a" not in plan.absorbed and "b" not in plan.absorbed


def test_dropout_elided_with_alias():
    net = Network("drop")
    net.add_input("data", (1, 4, 4))
    relu = net.add_relu("relu", "data")
    drop = net.add_dropout("drop", relu)
    net.add_fc("fc", drop, num_output=2)
    plan = plan_fusion(net, prune_to_output(net))
    assert "drop" in plan.consumed
    assert plan.resolve_blob("drop") == "relu"


def test_fold_identity_without_absorbed_layers(rng):
    net = Network("x")
    weight = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
    bias = rng.normal(size=(4,)).astype(np.float32)
    w, b, relu = fold_batchnorm_scale(net, weight, bias, [])
    assert np.array_equal(w, weight)
    assert np.array_equal(b, bias)
    assert not relu


def test_fold_bn_scale_matches_reference(residual_net, rng):
    """Folded conv must equal conv→BN→Scale→ReLU computed separately."""
    from repro.nn.reference import ReferenceExecutor

    layers = prune_to_output(residual_net)
    plan = plan_fusion(residual_net, layers)
    conv_layer = next(l for l in residual_net.layers if l.name == "conv1")
    params = residual_net.params["conv1"]
    w, b, relu = fold_batchnorm_scale(
        residual_net, params["weight"], params.get("bias"), plan.absorbed["conv1"]
    )
    assert relu
    x = rng.normal(size=(8, 8, 8)).astype(np.float32)
    executor = ReferenceExecutor(residual_net)
    executor.run(x, record_blobs=True)
    expected = executor.blobs["relu1"]
    # manual conv with folded params
    from tests.nvdla.test_compute import scipy_conv_float

    xp = np.pad(x, ((0, 0), (1, 1), (1, 1)))
    folded = scipy_conv_float(xp.astype(np.float16), w.astype(np.float16))
    folded += b.reshape(-1, 1, 1)
    folded = np.maximum(folded, 0)
    assert np.allclose(folded, expected, rtol=2e-2, atol=2e-2)


def test_resolve_blob_rejects_cyclic_aliases():
    """Regression guard: a cyclic alias chain must raise, not hang."""
    plan = FusionPlan(aliases={"a": "b", "b": "a"})
    with pytest.raises(CompilerError, match="cyclic blob alias"):
        plan.resolve_blob("a")
    with pytest.raises(CompilerError):  # self-alias: degenerate cycle
        FusionPlan(aliases={"x": "x"}).resolve_blob("x")
    # Acyclic chains still resolve through every hop.
    assert FusionPlan(aliases={"a": "b", "b": "c"}).resolve_blob("a") == "c"


def test_descriptor_chain_fuses_private_pool(tiny_net):
    """A pool whose input exists only to feed it collapses into the
    producing conv as a flying PDP epilogue."""
    loadable = compile_network(tiny_net, NV_SMALL, CompileOptions(fusion="graph"))
    schedule = loadable.schedule
    assert [op.kind for op in schedule.ops] == ["conv", "pool", "conv", "cpusoftmax"]
    pool_output = schedule.ops[1].output
    assert fuse_descriptor_chains(schedule) == 1
    assert [op.kind for op in schedule.ops] == ["conv", "conv", "cpusoftmax"]
    conv = schedule.ops[0]
    assert conv.has_pool_epilogue
    assert conv.conv_out_shape is not None
    assert conv.sdp_out_shape == conv.conv_out_shape
    assert conv.output is pool_output  # the chain now writes the pool's surface


def test_descriptor_chain_keeps_shared_intermediate():
    """A conv output with two readers is not private: neither pool may
    absorb it, or the other reader would see garbage."""
    net = Network("shared", seed=3)
    data = net.add_input("data", (4, 8, 8))
    conv = net.add_conv("conv", data, num_output=8, kernel_size=3, pad=1)
    p1 = net.add_pool("p1", conv, PoolKind.MAX, kernel_size=2, stride=2)
    p2 = net.add_pool("p2", conv, PoolKind.AVE, kernel_size=2, stride=2)
    cat = net.add_concat("cat", [p1, p2])
    net.add_fc("fc", cat, num_output=2)
    net.validate()
    loadable = compile_network(net, NV_SMALL)  # descriptor fusion default
    kinds = [op.kind for op in loadable.schedule.ops]
    assert kinds.count("pool") == 2
    assert not any(
        getattr(op, "has_pool_epilogue", False) for op in loadable.schedule.ops
    )


def test_fusion_off_emits_one_chain_per_layer(tiny_net):
    """``fusion="off"`` de-absorbs ReLU into a standalone SDP op and
    keeps the pool as its own chain — one descriptor chain per layer."""
    loadable = compile_network(tiny_net, NV_SMALL, CompileOptions(fusion="off"))
    kinds = [op.kind for op in loadable.schedule.ops]
    assert kinds == ["conv", "sdp", "pool", "conv", "cpusoftmax"]
    conv = loadable.schedule.ops[0]
    assert not conv.relu and not conv.has_pool_epilogue
    assert loadable.schedule.ops[1].relu


def test_concat_aliases_offsets(branchy_net):
    layers = prune_to_output(branchy_net)
    plan = plan_fusion(branchy_net, layers)
    aliases = plan_concats(branchy_net, layers, plan)
    assert aliases["left"].parent_blob == "cat"
    assert aliases["left"].channel_offset == 0
    assert aliases["right"].channel_offset == 8
    assert aliases["right"].parent_channels == 24


def test_chained_concats_collapse():
    net = Network("chain")
    net.add_input("data", (8, 2, 2))
    a = net.add_relu("a", "data")
    b = net.add_relu("b", "data")
    c = net.add_relu("c", "data")
    inner = net.add_concat("inner", [a, b])
    net.add_concat("outer", [inner, c])
    layers = prune_to_output(net)
    plan = plan_fusion(net, layers)
    aliases = plan_concats(net, layers, plan)
    assert aliases["b"].parent_blob == "outer"
    assert aliases["b"].channel_offset == 8
    assert aliases["c"].channel_offset == 16
