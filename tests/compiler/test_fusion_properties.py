"""Property-based fusion legality (Hypothesis).

Random conv/ReLU/pool towers drive three invariant families:

1. ``plan_fusion`` structure — absorption is a partition of the
   consumed layers, and blob aliases always resolve (no cycles);
2. descriptor-chain legality — only private, full-view, read-once
   intermediates disappear from the schedule, fused convs carry a
   complete pool epilogue, and the fused loadable analyzes clean;
3. execution equivalence — all three fusion tiers produce
   bit-identical outputs on the virtual platform.  The generated
   towers have no eltwise layer, so even ``off`` (standalone-ReLU
   chains) must match exactly: ReLU commutes with the monotone
   requantisation either side of it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analyze import analyze_loadable
from repro.compiler import CompileOptions, compile_network
from repro.nn.graph import Network
from repro.nn.layers import PoolKind
from repro.nvdla import NV_SMALL
from repro.vp import NvdlaRuntime, VirtualPlatform

FUSION_MODES = ("off", "graph", "descriptor")


@st.composite
def tower_nets(draw) -> Network:
    """conv[→relu][→pool] towers ending in a small FC head."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    in_channels = draw(st.sampled_from([1, 4, 8]))
    net = Network(f"prop{seed}", seed=seed)
    blob = net.add_input("data", (in_channels, 8, 8))
    spatial = 8
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        kernel = draw(st.sampled_from([1, 3]))
        blob = net.add_conv(
            f"conv{index}",
            blob,
            num_output=draw(st.sampled_from([4, 8])),
            kernel_size=kernel,
            pad=kernel // 2,
        )
        if draw(st.booleans()):
            blob = net.add_relu(f"relu{index}", blob)
        if spatial >= 4 and draw(st.booleans()):
            kind = draw(st.sampled_from([PoolKind.MAX, PoolKind.AVE]))
            blob = net.add_pool(f"pool{index}", blob, kind, kernel_size=2, stride=2)
            spatial //= 2
    net.add_fc("fc", blob, num_output=3)
    net.validate()
    return net


def _read_counts(schedule) -> dict[str, int]:
    counts: dict[str, int] = {}
    for op in schedule.ops:
        for ref in op.inputs():
            counts[ref.blob] = counts.get(ref.blob, 0) + 1
    return counts


def _run_vp(loadable, image):
    platform = VirtualPlatform(NV_SMALL, trace=False)
    runtime = NvdlaRuntime(platform)
    runtime.deploy(loadable)
    runtime.set_input(image)
    return runtime.execute().output


@settings(max_examples=30, deadline=None)
@given(net=tower_nets())
def test_plan_fusion_invariants(net):
    from repro.compiler.fusion import plan_fusion, prune_to_output

    layers = prune_to_output(net)
    plan = plan_fusion(net, layers)
    # Absorption partitions the consumed set: every consumed layer
    # appears in exactly one producer's absorbed list, and no producer
    # is itself consumed.
    absorbed_names = [l.name for group in plan.absorbed.values() for l in group]
    assert sorted(absorbed_names) == sorted(plan.consumed)
    assert len(absorbed_names) == len(set(absorbed_names))
    assert not plan.consumed.intersection(plan.absorbed)
    # Every blob in the network resolves without raising (acyclic).
    for layer in layers:
        for blob in (*layer.bottoms, *layer.tops):
            plan.resolve_blob(blob)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(net=tower_nets())
def test_descriptor_fusion_is_legal_and_analyzes_clean(net):
    graph = compile_network(net, NV_SMALL, CompileOptions(fusion="graph"))
    fused = compile_network(net, NV_SMALL, CompileOptions(fusion="descriptor"))

    # Fused convs must carry a complete, consistent pool epilogue.
    for op in fused.schedule.ops:
        if getattr(op, "has_pool_epilogue", False):
            assert op.conv_out_shape is not None
            assert op.sdp_out_shape == op.conv_out_shape
            assert op.pool_mode in ("max", "avg")

    # Legality: every blob that disappeared was a private, read-once
    # intermediate that is not the network output.
    graph_outputs = {op.output.blob for op in graph.schedule.ops if op.outputs()}
    fused_outputs = {op.output.blob for op in fused.schedule.ops if op.outputs()}
    reads = _read_counts(graph.schedule)
    output_blob = graph.output_tensor.blob
    for blob in graph_outputs - fused_outputs:
        assert reads.get(blob, 0) == 1, f"{blob} had {reads.get(blob)} readers"
        assert blob != output_blob

    # The fused artifact still passes all eight static-analysis passes.
    report = analyze_loadable(fused, NV_SMALL)
    assert report.clean, report.render()


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(net=tower_nets(), input_seed=st.integers(min_value=0, max_value=2**16))
def test_fusion_tiers_bit_identical_on_vp(net, input_seed):
    rng = np.random.default_rng(input_seed)
    image = rng.uniform(-1, 1, net.input_shape).astype(np.float32)
    outputs = {
        mode: _run_vp(
            compile_network(net, NV_SMALL, CompileOptions(fusion=mode)), image
        )
        for mode in FUSION_MODES
    }
    np.testing.assert_array_equal(outputs["descriptor"], outputs["graph"])
    np.testing.assert_array_equal(outputs["descriptor"], outputs["off"])


def test_generator_reaches_fused_chains():
    """Sanity: the strategy space actually produces fusable towers
    (guards the properties against vacuous success)."""
    found = False
    for seed in range(40):
        net = Network(f"probe{seed}", seed=seed)
        blob = net.add_input("data", (4, 8, 8))
        blob = net.add_conv("conv0", blob, num_output=8, kernel_size=3, pad=1)
        blob = net.add_relu("relu0", blob)
        blob = net.add_pool("pool0", blob, PoolKind.MAX, kernel_size=2, stride=2)
        net.add_fc("fc", blob, num_output=3)
        net.validate()
        fused = compile_network(net, NV_SMALL)
        if any(getattr(op, "has_pool_epilogue", False) for op in fused.schedule.ops):
            found = True
            break
    assert found
