"""Lowering, allocation, weight packing and the loadable container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import CompileOptions, compile_network
from repro.compiler.loadable import Loadable
from repro.compiler.ops import ConvOp, CpuSoftmaxOp, LrnOp, PoolOp, SdpOp
from repro.errors import CompilerError
from repro.nn.graph import Network
from repro.nn.zoo import ZOO, mobilenet_v1
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision


def _op_kinds(loadable):
    return [op.kind for op in loadable.schedule.ops]


def test_tiny_net_lowering(tiny_net):
    loadable = compile_network(tiny_net, NV_SMALL)
    kinds = _op_kinds(loadable)
    # conv(+relu absorbed, +pool pulled in as a fused PDP epilogue),
    # fc-as-conv, cpu softmax
    assert kinds == ["conv", "conv", "cpusoftmax"]
    conv = loadable.schedule.ops[0]
    assert conv.relu  # absorbed
    assert conv.has_pool_epilogue  # descriptor fusion collapsed the pool
    fc = loadable.schedule.ops[1]
    assert fc.kernel_shape == (4, 8, 3, 3)  # kernel spans the pooled cube
    # Graph-level fusion keeps the standalone pool chain.
    graph = compile_network(tiny_net, NV_SMALL, CompileOptions(fusion="graph"))
    assert _op_kinds(graph) == ["conv", "pool", "conv", "cpusoftmax"]


def test_residual_net_int8_fuses_eltwise_with_operand_converter(residual_net):
    loadable = compile_network(residual_net, NV_SMALL)
    kinds = _op_kinds(loadable)
    assert "sdp" not in kinds  # the residual add rides conv2's SDP pass
    conv2 = next(op for op in loadable.schedule.ops if op.name == "conv2")
    assert conv2.eltwise is not None and conv2.relu
    # The ERDMA converter must rescale the int8 operand into the
    # accumulator domain: factor = s_operand / (s_in * s_w).
    expected = conv2.eltwise_input.scale / (conv2.input.scale * conv2.weight_scale)
    got = conv2.ew_cvt_mult / (1 << conv2.ew_cvt_shift)
    assert got == pytest.approx(expected, rel=0.02)


def test_residual_net_fusion_can_be_disabled(residual_net):
    loadable = compile_network(
        residual_net, NV_SMALL, CompileOptions(fuse_eltwise=False)
    )
    kinds = _op_kinds(loadable)
    assert "sdp" in kinds  # materialised eltwise op
    sdp = next(op for op in loadable.schedule.ops if isinstance(op, SdpOp))
    assert sdp.eltwise is not None and sdp.relu


def test_residual_net_fp16_fuses_eltwise(residual_net):
    loadable = compile_network(
        residual_net, NV_FULL, CompileOptions(precision=Precision.FP16)
    )
    kinds = _op_kinds(loadable)
    assert "sdp" not in kinds  # the residual add rides conv2's SDP pass
    conv2 = next(op for op in loadable.schedule.ops if op.name == "conv2")
    assert conv2.eltwise is not None
    assert conv2.relu
    assert (conv2.ew_cvt_mult, conv2.ew_cvt_shift) == (1, 0)  # fp16: identity


def test_eltwise_operands_share_scale(residual_net):
    loadable = compile_network(
        residual_net, NV_SMALL, CompileOptions(fuse_eltwise=False)
    )
    sdp = next(op for op in loadable.schedule.ops if isinstance(op, SdpOp))
    assert sdp.input.scale == sdp.eltwise_input.scale == sdp.output.scale


def test_concat_is_zero_copy(branchy_net):
    loadable = compile_network(branchy_net, NV_SMALL)
    ops = {op.name: op for op in loadable.schedule.ops}
    left, right = ops["left"], ops["right"]
    assert left.output.blob == right.output.blob == "cat"
    assert right.output.address == left.output.address + 8 * 6 * 6  # one surface block
    tail = ops["tail"]
    assert tail.input.blob == "cat"
    # concat group shares one scale
    assert left.output.scale == right.output.scale == tail.input.scale


@pytest.mark.slow
def test_depthwise_lowered_to_channel_blocks():
    net = mobilenet_v1()
    loadable = compile_network(net, NV_SMALL)
    dw2 = [op for op in loadable.schedule.ops if op.name.startswith("conv3_dw_b")]
    # conv3_dw has 64 channels -> 8 blocks of atomic_c=8 on nv_small
    assert len(dw2) == 8
    block = dw2[0]
    assert block.kernel_shape == (8, 8, 3, 3)
    # block-diagonal: off-diagonal weights must be zero
    w = block.q_weight
    for i in range(8):
        for j in range(8):
            if i != j:
                assert not w[i, j].any()


@pytest.mark.slow
def test_grouped_conv_split_per_group():
    net = ZOO["alexnet"]()
    loadable = compile_network(
        net, NV_FULL, CompileOptions(precision=Precision.FP16)
    )
    conv2_parts = [op for op in loadable.schedule.ops if op.name.startswith("conv2_g")]
    assert len(conv2_parts) == 2
    a, b = conv2_parts
    assert a.input.channel_offset == 0
    assert b.input.channel_offset == 48
    assert a.output.channel_offset == 0
    assert b.output.channel_offset == 128


def test_lrn_alpha_scaled_for_int8():
    net = Network("lrn", seed=9)
    net.add_input("data", (8, 4, 4))
    net.add_lrn("norm", "data", local_size=5, alpha=1e-4)
    net.add_fc("fc", "norm", num_output=2)
    loadable = compile_network(net, NV_SMALL)
    lrn_op = next(op for op in loadable.schedule.ops if isinstance(op, LrnOp))
    scale = lrn_op.input.scale
    assert lrn_op.alpha == pytest.approx(1e-4 * scale * scale)


def test_quantisation_constants_present(tiny_net):
    loadable = compile_network(tiny_net, NV_SMALL)
    for op in loadable.schedule.ops:
        if isinstance(op, ConvOp):
            assert op.q_weight is not None
            assert 1 <= op.cvt_mult < (1 << 16)
            assert 0 <= op.cvt_shift <= 31


def test_fp16_needs_capable_config(tiny_net):
    with pytest.raises(CompilerError):
        compile_network(tiny_net, NV_SMALL, CompileOptions(precision=Precision.FP16))


def test_allocator_regions_ordered_and_disjoint(tiny_net):
    loadable = compile_network(tiny_net, NV_SMALL)
    mm = loadable.memory_map
    assert mm.weights.address >= mm.base + 0x1000  # status page reserved
    assert mm.input.address >= mm.weights.end
    assert mm.activations.address >= mm.input.end


def test_allocator_reuses_buffers():
    """A long chain must not allocate one buffer per layer."""
    net = Network("chain", seed=2)
    blob = net.add_input("data", (8, 16, 16))
    for index in range(12):
        blob = net.add_conv(f"conv{index}", blob, num_output=8, kernel_size=3, pad=1)
    net.validate()
    loadable = compile_network(net, NV_SMALL)
    one_tensor = 8 * 16 * 16
    arena = loadable.memory_map.activations.size
    assert arena < one_tensor * 6  # ping-pong-ish reuse, not 12 buffers


def test_allocator_respects_liveness_of_shortcut(residual_net):
    """The eltwise shortcut (input tensor) must not be overwritten by
    intermediate buffers before the add executes."""
    loadable = compile_network(
        residual_net, NV_SMALL, CompileOptions(fuse_eltwise=False)
    )
    ops = loadable.schedule.ops
    sdp = next(op for op in ops if isinstance(op, SdpOp))
    shortcut_addr = sdp.eltwise_input.address
    for op in ops[: ops.index(sdp)]:
        for out in op.outputs():
            assert out.address != shortcut_addr or out.blob == sdp.eltwise_input.blob


def test_weight_packer_aligns_offsets(tiny_net):
    loadable = compile_network(tiny_net, NV_SMALL)
    for op in loadable.schedule.ops:
        if isinstance(op, ConvOp):
            assert op.weight_offset % 64 == 0
            assert op.weight_offset + op.weight_bytes <= len(loadable.weight_blob)
            if op.bias_offset is not None:
                assert op.bias_offset % 64 == 0


def test_loadable_roundtrip_preserves_ops(residual_net):
    loadable = compile_network(residual_net, NV_SMALL)
    back = Loadable.from_bytes(loadable.to_bytes())
    assert back.network == loadable.network
    assert back.weight_blob == loadable.weight_blob
    assert len(back.schedule.ops) == len(loadable.schedule.ops)
    for original, restored in zip(loadable.schedule.ops, back.schedule.ops):
        assert original.kind == restored.kind
        assert original.name == restored.name
        if isinstance(original, ConvOp):
            assert restored.kernel_shape == original.kernel_shape
            assert restored.weight_offset == original.weight_offset
            assert restored.input.address == original.input.address
    assert back.output_tensor.address == loadable.output_tensor.address


def test_loadable_rejects_garbage():
    from repro.errors import LoadableError

    with pytest.raises(LoadableError):
        Loadable.from_bytes(b"NOPE" + b"\x00" * 32)


def test_memory_base_is_configurable(tiny_net):
    loadable = compile_network(tiny_net, NV_SMALL, CompileOptions(memory_base=0x200000))
    assert loadable.memory_map.base == 0x200000
    assert loadable.input_tensor.address >= 0x200000


def test_standalone_batchnorm_rejected():
    net = Network("bad")
    net.add_input("data", (2, 2, 2))
    bn = net.add_batchnorm("bn", "data")  # nothing to fold into
    net.add_fc("fc", bn, num_output=2)
    with pytest.raises(CompilerError):
        compile_network(net, NV_SMALL)
