"""Golden-trace regression: the LeNet-5/nv_small configuration file.

The checked-in fixture ``golden/lenet5_nv_small.cfg`` snapshots the
``ConfigCommand`` sequence that ``trace_to_config`` produces for the
default flow (seed 2024).  Compiler, VP or codegen changes that alter
the register program — reordering, different addresses, different poll
masks — fail here instead of silently drifting the deployed artefacts.

If a change is *intentional*, regenerate the fixture::

    PYTHONPATH=src python - <<'EOF'
    from repro.baremetal import generate_baremetal
    from repro.baremetal.config_file import render_config_file
    from repro.nn.zoo import lenet5
    from repro.nvdla import NV_SMALL
    bundle = generate_baremetal(lenet5(), NV_SMALL)
    open("tests/baremetal/golden/lenet5_nv_small.cfg", "w").write(
        render_config_file(bundle.commands,
        header="golden configuration file: lenet5 on nv_small (int8), seed 2024"))
    EOF
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baremetal import generate_baremetal
from repro.baremetal.config_file import parse_config_file, render_config_file
from repro.nn.zoo import lenet5
from repro.nvdla import NV_SMALL

GOLDEN = Path(__file__).parent / "golden" / "lenet5_nv_small.cfg"
HEADER = "golden configuration file: lenet5 on nv_small (int8), seed 2024"


@pytest.fixture(scope="module")
def lenet_commands():
    return generate_baremetal(lenet5(), NV_SMALL).commands


def test_render_is_byte_stable_against_golden(lenet_commands):
    rendered = render_config_file(lenet_commands, header=HEADER)
    assert rendered == GOLDEN.read_text(), (
        "configuration-file drift for lenet5/nv_small — if intentional, "
        "regenerate the fixture (see module docstring)"
    )


def test_golden_round_trips_through_parser(lenet_commands):
    parsed = parse_config_file(GOLDEN.read_text())
    assert parsed == lenet_commands
    # And the parse→render cycle is itself stable (modulo the header).
    assert render_config_file(parsed) == render_config_file(lenet_commands)


def test_golden_command_mix_is_plausible():
    commands = parse_config_file(GOLDEN.read_text())
    writes = [c for c in commands if c.kind == "write_reg"]
    reads = [c for c in commands if c.kind == "read_reg"]
    assert len(writes) > len(reads) > 0
    # Interrupt-status polls carry restricted masks (the trace_to_config
    # masking rule); plain register reads keep the full mask.
    assert any(c.mask != 0xFFFFFFFF for c in reads)
