"""Golden-trace regression: pinned configuration files.

The checked-in fixtures snapshot the ``ConfigCommand`` sequences that
``trace_to_config`` produces for the default flow (seed 2024), one per
hardware class:

- ``golden/lenet5_nv_small.cfg`` — the small INT8 build (Table II),
- ``golden/resnet18_nv_full.cfg`` — the large FP16 build (Table III),
  covering the wide-atom packing and FP16 register programming the
  nv_small fixture cannot see.

Compiler, VP or codegen changes that alter a register program —
reordering, different addresses, different poll masks — fail here
instead of silently drifting the deployed artefacts.

Fixture history: regenerated when descriptor-level fusion became the
default compile mode.  Conv→pool pairs now program the PDP inside the
conv's own chain group (``D_SRC_FLYING=1``, null PDP_RDMA source
address), so the intermediate DRAM surface, the standalone pool
chain, and one interrupt poll per fused pair all disappear from the
register program; standalone-pool register sequences are otherwise
byte-identical.

If a change is *intentional*, regenerate a fixture::

    PYTHONPATH=src python - <<'EOF'
    from repro.baremetal import generate_baremetal
    from repro.baremetal.config_file import render_config_file
    from repro.nn.zoo import lenet5, resnet18_cifar
    from repro.nvdla import NV_FULL, NV_SMALL
    from repro.nvdla.config import Precision
    for net, config, precision, name in (
        (lenet5(), NV_SMALL, Precision.INT8, "lenet5_nv_small"),
        (resnet18_cifar(), NV_FULL, Precision.FP16, "resnet18_nv_full"),
    ):
        bundle = generate_baremetal(net, config, precision=precision)
        open(f"tests/baremetal/golden/{name}.cfg", "w").write(
            render_config_file(bundle.commands,
            header=f"golden configuration file: {bundle.network} on "
                   f"{config.name} ({precision.value}), seed 2024"))
    EOF
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baremetal import generate_baremetal
from repro.baremetal.config_file import parse_config_file, render_config_file
from repro.nn.zoo import lenet5, resnet18_cifar
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "lenet5_nv_small": (
        lenet5,
        NV_SMALL,
        Precision.INT8,
        "golden configuration file: lenet5 on nv_small (int8), seed 2024",
    ),
    "resnet18_nv_full": (
        resnet18_cifar,
        NV_FULL,
        Precision.FP16,
        "golden configuration file: resnet18 on nv_full (fp16), seed 2024",
    ),
}


@pytest.fixture(scope="module", params=sorted(CASES))
def case(request):
    builder, config, precision, header = CASES[request.param]
    bundle = generate_baremetal(builder(), config, precision=precision)
    golden = GOLDEN_DIR / f"{request.param}.cfg"
    return bundle.commands, golden, header


def test_render_is_byte_stable_against_golden(case):
    commands, golden, header = case
    rendered = render_config_file(commands, header=header)
    assert rendered == golden.read_text(), (
        f"configuration-file drift against {golden.name} — if intentional, "
        "regenerate the fixture (see module docstring)"
    )


def test_golden_round_trips_through_parser(case):
    commands, golden, _ = case
    parsed = parse_config_file(golden.read_text())
    assert parsed == commands
    # And the parse→render cycle is itself stable (modulo the header).
    assert render_config_file(parsed) == render_config_file(commands)


def test_golden_command_mix_is_plausible(case):
    _, golden, _ = case
    commands = parse_config_file(golden.read_text())
    writes = [c for c in commands if c.kind == "write_reg"]
    reads = [c for c in commands if c.kind == "read_reg"]
    assert len(writes) > len(reads) > 0
    # Interrupt-status polls carry restricted masks (the trace_to_config
    # masking rule); plain register reads keep the full mask.
    assert any(c.mask != 0xFFFFFFFF for c in reads)
