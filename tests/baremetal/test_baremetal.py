"""Bare-metal flow: config files, weight extraction, codegen, pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baremetal import (
    ConfigCommand,
    extract_initial_memory,
    generate_assembly,
    generate_baremetal,
    parse_config_file,
    render_config_file,
    split_by_regions,
    trace_to_config,
)
from repro.baremetal.codegen import CodegenOptions, MAGIC_DONE, MAGIC_FAIL, estimate_program_words
from repro.baremetal.image import segments_to_bin
from repro.baremetal.weight_extract import MemorySegment, total_bytes
from repro.errors import CodegenError
from repro.nvdla import NV_SMALL
from repro.riscv import assemble
from repro.vp.trace_log import TraceLog


# ----------------------------------------------------------------------
# Config-file format.
# ----------------------------------------------------------------------


def test_config_file_roundtrip():
    commands = [
        ConfigCommand("write_reg", 0xB010, 0x1),
        ConfigCommand("read_reg", 0xC, 0x4, 0x4),
    ]
    text = render_config_file(commands, header="demo")
    back = parse_config_file(text)
    assert back == commands
    assert text.startswith("# demo")


def test_config_file_parse_errors():
    with pytest.raises(CodegenError):
        parse_config_file("poke 0x0 0x1\n")
    with pytest.raises(CodegenError):
        parse_config_file("write_reg 0x0\n")


def test_config_command_validation():
    with pytest.raises(CodegenError):
        ConfigCommand("jump", 0, 0)
    with pytest.raises(CodegenError):
        ConfigCommand("write_reg", -1, 0)


# ----------------------------------------------------------------------
# Trace → config.
# ----------------------------------------------------------------------


def test_trace_to_config_converts_reads_and_writes():
    log = TraceLog()
    log.log_csb(0, 0x5010, 0x1234, True)
    log.log_csb(1, 0x5010, 0x1234, False)
    commands = trace_to_config(log)
    assert commands[0] == ConfigCommand("write_reg", 0x5010, 0x1234)
    assert commands[1].kind == "read_reg"
    assert commands[1].mask == 0xFFFFFFFF


def test_trace_to_config_masks_interrupt_polls():
    from repro.nvdla.csb import UNIT_BASES
    from repro.nvdla.units.glb import INTR_STATUS

    log = TraceLog()
    log.log_csb(0, UNIT_BASES["GLB"] + INTR_STATUS, 0x4, False)
    command = trace_to_config(log)[0]
    assert command.mask == 0x4  # poll only the completion bit


# ----------------------------------------------------------------------
# Weight extraction.
# ----------------------------------------------------------------------


def test_extraction_keeps_first_read_occurrence():
    log = TraceLog()
    log.log_dbb(0, 0x100, b"\x11\x22", False)
    log.log_dbb(1, 0x100, b"\x99\x99", False)  # later duplicate ignored
    segments = extract_initial_memory(log)
    assert segments == [MemorySegment(0x100, b"\x11\x22")]


def test_extraction_skips_written_then_read():
    log = TraceLog()
    log.log_dbb(0, 0x200, b"\xAA", True)  # NVDLA wrote it first
    log.log_dbb(1, 0x200, b"\xAA", False)  # then read back
    assert extract_initial_memory(log) == []


def test_extraction_coalesces_contiguous_lines():
    log = TraceLog()
    log.log_dbb(0, 0x100, bytes(64), False)
    log.log_dbb(1, 0x140, bytes(64), False)
    log.log_dbb(2, 0x300, bytes(4), False)
    segments = extract_initial_memory(log)
    assert [s.address for s in segments] == [0x100, 0x300]
    assert len(segments[0].data) == 128
    assert total_bytes(segments) == 132


def test_split_by_regions_partitions_and_splits():
    segments = [MemorySegment(0x90, bytes(range(32)))]
    regions = {"weights": (0x80, 0x20), "input": (0xA0, 0x20)}
    split = split_by_regions(segments, regions)
    assert split["weights"][0].address == 0x90
    assert len(split["weights"][0].data) == 0x10
    assert split["input"][0].address == 0xA0
    assert len(split["input"][0].data) == 0x10


def test_segments_to_bin_fills_gaps():
    image = segments_to_bin(
        "x.bin", [MemorySegment(0x10, b"\x01"), MemorySegment(0x13, b"\x04")]
    )
    assert image.load_address == 0x10
    assert image.data == b"\x01\x00\x00\x04"


# ----------------------------------------------------------------------
# Codegen.
# ----------------------------------------------------------------------


def test_generated_assembly_assembles():
    commands = [
        ConfigCommand("write_reg", 0x5010, 0xDEADBEEF),
        ConfigCommand("read_reg", 0xC, 0x4, 0x4),
        ConfigCommand("write_reg", 0xC, 0x4),
    ]
    asm = generate_assembly(commands)
    program = assemble(asm)
    assert len(program.words) > 10
    assert len(program.words) <= estimate_program_words(commands)


def test_generated_assembly_window_caching():
    commands = [ConfigCommand("write_reg", 0x5000 + 4 * i, i) for i in range(10)]
    asm = generate_assembly(commands)
    # One window load for ten same-window writes.
    assert asm.count("li   s0") == 1


def test_small_constants_use_single_instruction():
    asm = generate_assembly([ConfigCommand("write_reg", 0x5010, 3)])
    assert "addi t0, x0, 3" in asm


def test_codegen_options_validated():
    with pytest.raises(CodegenError):
        CodegenOptions(poll_limit=0)


def test_magics_differ():
    assert MAGIC_DONE != MAGIC_FAIL


# ----------------------------------------------------------------------
# Full pipeline on a tiny network.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_bundle():
    from repro.nn.graph import Network
    from repro.nn.layers import PoolKind

    net = Network("tiny_bm", seed=7)
    data = net.add_input("data", (1, 8, 8))
    conv = net.add_conv("conv1", data, num_output=8, kernel_size=3)
    relu = net.add_relu("relu1", conv)
    pool = net.add_pool("pool1", relu, PoolKind.MAX, kernel_size=2, stride=2)
    net.add_fc("fc1", pool, num_output=4)
    net.validate()
    return generate_baremetal(net, NV_SMALL)


def test_bundle_has_all_artifacts(tiny_bundle):
    assert len(tiny_bundle.commands) == len(tiny_bundle.trace.csb)
    assert tiny_bundle.program.size_bytes > 0
    assert tiny_bundle.images.preload  # weights at least
    assert "write_reg" in tiny_bundle.config_file_text
    assert tiny_bundle.describe()


def test_bundle_weight_image_matches_compiler_blob(tiny_bundle):
    weights = next(i for i in tiny_bundle.images.preload if i.name == "weights.bin")
    blob = tiny_bundle.loadable.weight_blob
    assert weights.load_address == tiny_bundle.loadable.weight_base
    # Extraction covers exactly the bytes NVDLA read; those must agree
    # with the compiler's blob at the same offsets.
    for offset in range(0, min(len(weights.data), len(blob)), 97):
        if weights.data[offset] != 0:
            assert weights.data[offset] == blob[offset]


def test_bundle_input_image_extracted(tiny_bundle):
    names = {image.name for image in tiny_bundle.images.preload}
    assert "input.bin" in names


def test_bundle_program_is_valid_riscv(tiny_bundle):
    from repro.riscv import disassemble_program

    listing = disassemble_program(tiny_bundle.program)
    assert "sw" in listing and "lw" in listing


def test_timing_fidelity_bundle_ships_compiler_weights(tiny_net):
    bundle = generate_baremetal(tiny_net, NV_SMALL, fidelity="timing")
    assert bundle.images.preload[0].data == bundle.loadable.weight_blob


def test_deterministic_input_by_seed(tiny_net):
    a = generate_baremetal(tiny_net, NV_SMALL, seed=5)
    b = generate_baremetal(tiny_net, NV_SMALL, seed=5)
    assert np.array_equal(a.input_image, b.input_image)
    assert a.program.words == b.program.words
