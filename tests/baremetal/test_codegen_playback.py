"""Codegen playback verification.

The strongest property of the bare-metal flow: executing the generated
machine code on the ISS against a scripted register bus must reproduce
the configuration-command sequence *exactly* — same writes, same
order, same values; polls must spin until the scripted value appears.
This closes the loop over codegen + assembler + CPU semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baremetal.codegen import CodegenOptions, MAGIC_DONE, generate_assembly
from repro.baremetal.config_file import ConfigCommand
from repro.bus.types import AccessType, BusPort, Reply, Transfer
from repro.mem import Bram
from repro.riscv import Cpu, assemble

STATUS_BASE = 0x100000


class ScriptedRegisterBus(BusPort):
    """Replays expected register behaviour and records all accesses.

    Reads of a scripted address return 0 for ``delay`` polls, then the
    scripted value — emulating an NVDLA op completing.
    """

    def __init__(self, commands: list[ConfigCommand], poll_delay: int = 3) -> None:
        self.writes: list[tuple[int, int]] = []
        self.status_page: dict[int, int] = {}
        self._reads: dict[int, list[int]] = {}
        for command in commands:
            if command.kind == "read_reg":
                plan = [0] * poll_delay if command.mask != 0xFFFFFFFF else []
                self._reads.setdefault(command.address, []).extend(
                    plan + [command.data]
                )

    def transfer(self, xfer: Transfer) -> Reply:
        if xfer.access is AccessType.WRITE:
            value = int.from_bytes(xfer.data, "little")
            if xfer.address >= STATUS_BASE:
                self.status_page[xfer.address - STATUS_BASE] = value
            else:
                self.writes.append((xfer.address, value))
            return Reply(cycles=1)
        queue = self._reads.get(xfer.address)
        if queue:
            value = queue[0]
            if len(queue) > 1:
                queue.pop(0)
        else:
            value = 0
        return Reply(data=(value & 0xFFFFFFFF).to_bytes(4, "little"), cycles=1)


def _run(commands: list[ConfigCommand], poll_delay: int = 3) -> ScriptedRegisterBus:
    assembly = generate_assembly(commands, options=CodegenOptions(poll_limit=1000))
    program = assemble(assembly)
    bus = ScriptedRegisterBus(commands, poll_delay=poll_delay)
    cpu = Cpu(ibus=Bram(1 << 20), dbus=bus)
    cpu.load_program(program)
    cpu.run(max_instructions=2_000_000)
    assert bus.status_page.get(0) == MAGIC_DONE, "program did not self-report DONE"
    return bus


def test_writes_replayed_in_order():
    commands = [
        ConfigCommand("write_reg", 0x5010, 0xDEADBEEF),
        ConfigCommand("write_reg", 0xB014, 0x1),
        ConfigCommand("write_reg", 0x9020, 0x7FF),
    ]
    bus = _run(commands)
    assert bus.writes == [(0x5010, 0xDEADBEEF), (0xB014, 0x1), (0x9020, 0x7FF)]


def test_poll_spins_until_value_appears():
    commands = [
        ConfigCommand("write_reg", 0x5010, 1),
        ConfigCommand("read_reg", 0xC, 0x4, 0x4),  # poll (masked)
        ConfigCommand("write_reg", 0xC, 0x4),  # acknowledge
    ]
    bus = _run(commands, poll_delay=5)
    assert bus.writes == [(0x5010, 1), (0xC, 0x4)]


def test_plain_read_checks_immediately():
    commands = [ConfigCommand("read_reg", 0x0, 0x0, 0xFFFFFFFF)]
    _run(commands)  # value 0 matches instantly; DONE asserted


_ADDRESSES = st.integers(min_value=0, max_value=0x10FFC).map(lambda a: a & ~0x3)
_VALUES = st.integers(min_value=0, max_value=0xFFFFFFFF)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(_ADDRESSES, _VALUES).map(
            lambda av: ConfigCommand("write_reg", av[0], av[1])
        ),
        min_size=1,
        max_size=40,
    )
)
def test_arbitrary_write_sequences_replay_exactly(commands):
    bus = _run(commands)
    assert bus.writes == [(c.address, c.data) for c in commands]


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(_ADDRESSES, _VALUES, st.booleans()),
        min_size=1,
        max_size=25,
    )
)
def test_mixed_sequences_complete(mix):
    commands = []
    for address, value, is_write in mix:
        if is_write:
            commands.append(ConfigCommand("write_reg", address, value))
        else:
            # Masked poll: the scripted bus eventually supplies the value.
            mask = value | 1  # non-zero mask
            commands.append(ConfigCommand("read_reg", address, value & mask, mask))
    bus = _run(commands)
    expected_writes = [
        (c.address, c.data) for c in commands if c.kind == "write_reg"
    ]
    assert bus.writes == expected_writes


def test_cycle_counter_recorded_in_status_page():
    from repro.baremetal.codegen import STATUS_CYCLES_LO

    commands = [ConfigCommand("write_reg", 0x5010, 1)]
    bus = _run(commands)
    assert bus.status_page.get(STATUS_CYCLES_LO, 0) > 0
