"""The paper's §V functional-validation traces on the integrated SoC."""

from __future__ import annotations

import pytest

from repro.baremetal.sanity import (
    ALL_TRACES,
    bdma_memory_trace,
    conv_trace,
    pdp_trace,
    run_on_soc,
    sanity_trace,
)
from repro.core import Soc
from repro.nvdla import NV_SMALL


@pytest.mark.parametrize("name", list(ALL_TRACES))
def test_trace_runs_clean_on_soc(name):
    test = ALL_TRACES[name]()
    assert run_on_soc(test, Soc(NV_SMALL)), f"{name} trace failed on the SoC"


def test_sanity_trace_checks_version_and_pingpong():
    test = sanity_trace()
    reads = [c for c in test.commands if c.kind == "read_reg"]
    assert reads[0].address == 0x0  # GLB HW_VERSION
    # Each probe reads back its value and the other group's reset 0.
    expectations = [c.data for c in reads[1:]]
    assert 0 in expectations and any(v != 0 for v in expectations)


def test_bdma_memory_trace_detects_corruption():
    """If the DMA never ran, the expected-memory check must fail."""
    test = bdma_memory_trace()
    soc = Soc(NV_SMALL)
    # Sabotage: preload only, never run the program.
    for address, data in test.preload:
        soc.preload_dram(address, data)
    base = soc.address_map.dram_base
    address, expected = test.expected_memory[0]
    assert soc.dram.storage.read(address - base, len(expected)) != expected


def test_conv_trace_is_register_complete():
    test = conv_trace()
    writes = {c.address for c in test.commands if c.kind == "write_reg"}
    from repro.nvdla.csb import UNIT_BASES

    # Every conv-pipeline unit must be touched.
    for unit in ("CDMA", "CSC", "CMAC_A", "CMAC_B", "CACC", "SDP"):
        assert any(UNIT_BASES[unit] <= a < UNIT_BASES[unit] + 0x1000 for a in writes), unit


def test_pdp_trace_polls_the_right_interrupt():
    test = pdp_trace()
    from repro.nvdla.units.glb import interrupt_bit

    polls = [c for c in test.commands if c.kind == "read_reg" and c.mask != 0xFFFFFFFF]
    assert len(polls) == 1
    assert polls[0].mask == 1 << interrupt_bit("PDP", 0)


def test_traces_translate_to_assembly():
    for name, builder in ALL_TRACES.items():
        program = builder().program()
        assert program.size_bytes > 0, name
