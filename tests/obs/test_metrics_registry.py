"""Registry + histogram semantics: bucket edges, merges, snapshots.

The cross-process contract is that ``to_dict`` snapshots merged in any
grouping/order produce the same registry (counters and histogram
buckets are elementwise sums — associative and commutative; gauges are
last-write-wins).  The edge cases here — empty merges, merge
associativity, values exactly on bucket boundaries — are the ones a
naive implementation gets silently wrong.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_bucket_bounds,
)


# ----------------------------------------------------------------------
# Bucket boundaries.
# ----------------------------------------------------------------------


def test_log_bucket_bounds_shape():
    bounds = log_bucket_bounds(lo=1e-4, buckets_per_decade=5, decades=8)
    assert len(bounds) == 41
    assert bounds[0] == pytest.approx(1e-4)
    assert bounds[-1] == pytest.approx(1e4)
    assert bounds == sorted(bounds)


def test_boundary_value_lands_in_upper_bucket():
    # counts[i] covers [bounds[i-1], bounds[i]): a sample exactly on a
    # bound belongs to the bucket whose *lower* edge it is.
    hist = Histogram("h", bounds=[1.0, 10.0, 100.0])
    hist.observe(1.0)
    assert hist.counts == [0, 1, 0, 0]
    hist.observe(10.0)
    assert hist.counts == [0, 1, 1, 0]
    hist.observe(0.999)  # underflow
    assert hist.counts[0] == 1
    hist.observe(100.0)  # on the last bound → overflow bucket
    assert hist.counts[-1] == 1
    hist.observe(1e9)
    assert hist.counts[-1] == 2


def test_exact_stats_ride_along():
    hist = Histogram("h", bounds=[1.0, 10.0])
    for v in (0.5, 2.0, 50.0):
        hist.observe(v)
    assert hist.count == 3
    assert hist.sum == pytest.approx(52.5)
    assert hist.min == 0.5 and hist.max == 50.0
    assert hist.mean == pytest.approx(17.5)


def test_quantile_reports_bucket_upper_bound_and_exact_extremes():
    hist = Histogram("h", bounds=[1.0, 10.0, 100.0])
    for v in (2.0, 3.0, 4.0, 20.0):
        hist.observe(v)
    assert hist.quantile(50) == 10.0  # the [1, 10) bucket's upper bound
    assert hist.quantile(100) == 100.0
    hist.observe(5000.0)  # overflow reports the exact max
    assert hist.quantile(100) == 5000.0
    assert Histogram("empty").quantile(99) == 0.0


# ----------------------------------------------------------------------
# Merges.
# ----------------------------------------------------------------------


def _sample_histogram(values, bounds=(1.0, 10.0, 100.0)):
    hist = Histogram("h", bounds=list(bounds))
    for v in values:
        hist.observe(v)
    return hist


def test_merge_empty_into_empty():
    a, b = Histogram("h"), Histogram("h")
    a.merge(b)
    assert a.count == 0 and a.min is None and a.max is None
    assert a.quantile(99) == 0.0


def test_merge_empty_is_identity():
    a = _sample_histogram([0.5, 2.0, 20.0])
    before = a.to_dict()
    a.merge(_sample_histogram([]))
    assert a.to_dict() == before


def test_merge_equals_observing_everything_in_one():
    left, right = [0.5, 2.0, 2.0, 99.0], [1.0, 10.0, 10_000.0]
    merged = _sample_histogram(left)
    merged.merge(_sample_histogram(right))
    assert merged.to_dict() == _sample_histogram(left + right).to_dict()


def test_merge_associative_and_commutative():
    # Dyadic values: float sums stay exact in any addition order, so
    # the whole to_dict (counts AND sum) must match bit-for-bit.
    parts = ([0.125, 4.0], [16.0, 32.0, 1048576.0], [], [2.0])
    hists = [_sample_histogram(p) for p in parts]

    def fold(order):
        acc = Histogram("h", bounds=[1.0, 10.0, 100.0])
        for i in order:
            acc.merge(hists[i])
        return acc.to_dict()

    reference = fold((0, 1, 2, 3))
    assert fold((3, 2, 1, 0)) == reference
    # (a+b) + (c+d) == ((a+b)+c) + d
    ab = _sample_histogram(parts[0])
    ab.merge(hists[1])
    cd = _sample_histogram(parts[2])
    cd.merge(hists[3])
    ab.merge(cd)
    assert ab.to_dict() == reference


def test_merge_rejects_differing_bounds():
    with pytest.raises(ValueError):
        _sample_histogram([1.0]).merge(_sample_histogram([1.0], bounds=(1.0, 2.0)))


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------


def test_create_on_first_use_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    assert registry.names() == ["a", "g", "h"]
    assert registry.get("missing") is None


def test_type_clash_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")
    registry.histogram("h")
    with pytest.raises(TypeError):
        registry.counter("h")


def test_snapshot_round_trip_is_json_safe():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(3)
    registry.gauge("serve.queue.depth").set(7)
    registry.histogram("serve.request.wall.seconds").observe(0.004)
    snapshot = json.loads(json.dumps(registry.to_dict()))
    clone = MetricsRegistry.from_dict(snapshot)
    assert clone.to_dict() == registry.to_dict()


def test_cross_process_merge_semantics():
    # Two "processes" record independently; the parent folds snapshots.
    a, b = MetricsRegistry(), MetricsRegistry()
    for registry, walls in ((a, [0.001, 0.002]), (b, [0.004])):
        for wall in walls:
            registry.counter("serve.requests").inc()
            registry.histogram("serve.request.wall.seconds").observe(wall)
    a.gauge("workers").set(1)
    b.gauge("workers").set(2)
    parent = MetricsRegistry()
    parent.merge_dict(a.to_dict())
    parent.merge_dict(b.to_dict())
    assert parent.counter("serve.requests").value == 3
    hist = parent.histogram("serve.request.wall.seconds")
    assert hist.count == 3 and hist.max == 0.004
    assert parent.gauge("workers").value == 2  # last writer wins


def test_merge_dict_order_independent_for_counters_and_histograms():
    snapshots = []
    # Dyadic walls: every fold order sums exactly.
    for walls in ([0.25], [0.5, 0.75], [2.0]):
        registry = MetricsRegistry()
        for wall in walls:
            registry.counter("n").inc()
            registry.histogram("wall.seconds").observe(wall)
        snapshots.append(registry.to_dict())

    def fold(order):
        acc = MetricsRegistry()
        for i in order:
            acc.merge_dict(snapshots[i])
        return {k: v for k, v in acc.to_dict().items() if v["type"] != "gauge"}

    assert fold((0, 1, 2)) == fold((2, 0, 1)) == fold((1, 2, 0))


def test_merge_empty_registry_is_identity():
    registry = MetricsRegistry()
    registry.counter("n").inc(5)
    before = registry.to_dict()
    registry.merge(MetricsRegistry())
    assert registry.to_dict() == before
    empty = MetricsRegistry()
    empty.merge_dict({})
    assert empty.to_dict() == {}


def test_merge_dict_unknown_type_raises():
    with pytest.raises(ValueError):
        MetricsRegistry().merge_dict({"x": {"type": "summary", "value": 1}})


def test_render_mentions_every_instrument():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(2)
    registry.histogram("wall.seconds").observe(0.01)
    text = registry.render()
    assert "serve.requests: 2" in text
    assert "wall.seconds: count=1" in text and "p99~" in text


def test_counter_and_gauge_primitives():
    c = Counter("c")
    c.inc(); c.inc(2.5)
    assert c.value == 3.5
    assert c.to_dict() == {"type": "counter", "value": 3.5}
    g = Gauge("g")
    g.set(9.0)
    assert g.to_dict() == {"type": "gauge", "value": 9.0}
