"""Benchmark artifact envelope: provenance without disturbing results."""

from __future__ import annotations

import json
from datetime import datetime

from repro.obs import SCHEMA_VERSION, bench_envelope


def test_envelope_wraps_results_untouched():
    results = {"planes": {"1": {"rps": 100.0}}, "bit_identical": True}
    payload = bench_envelope(
        "bench_serving.process_scaling", {"smoke": True, "requests": 16}, results
    )
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["benchmark"] == "bench_serving.process_scaling"
    assert payload["run_config"] == {"smoke": True, "requests": 16}
    assert payload["results"] is results  # consumers read this key as-is


def test_generated_at_is_parseable_utc_iso8601():
    payload = bench_envelope("b", {}, {})
    stamp = datetime.fromisoformat(payload["generated_at"])
    assert stamp.tzinfo is not None
    assert stamp.utcoffset().total_seconds() == 0


def test_envelope_is_json_serialisable():
    payload = bench_envelope("b", {"seed": 7}, {"x": [1, 2]})
    assert json.loads(json.dumps(payload)) == payload


def test_run_config_is_copied_not_aliased():
    config = {"seed": 7}
    payload = bench_envelope("b", config, {})
    config["seed"] = 8
    assert payload["run_config"]["seed"] == 7
