"""Exporters and tree reconstruction: JSONL, Chrome trace, orphans.

Spans hit the JSONL file as workers drain them, so children routinely
precede parents and whole subtrees interleave across traces — tree
reconstruction must not depend on file order.  The Chrome trace export
must survive a write/read round trip with identities and attrs intact.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.obs.export import (
    build_trees,
    read_jsonl,
    read_trace,
    render_summary,
    render_tree,
    summarize,
    to_chrome_trace,
    write_jsonl,
    write_trace,
)


def span(name, trace_id, span_id, parent_id=None, start=0.0, end=1.0,
         process=-1, **attrs):
    return {"name": name, "trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id, "start_s": start, "end_s": end,
            "process": process, "attrs": attrs}


def request_tree(request_id, base=0.0):
    """root → queue + (worker.serve → execute → unit.conv), two pids."""
    trace = f"req-{request_id}"
    return [
        span("request", trace, f"p.{request_id}", start=base, end=base + 1.0),
        span("queue", trace, f"p.{request_id}q", parent_id=f"p.{request_id}",
             start=base, end=base + 0.2),
        span("worker.serve", trace, f"w.{request_id}", parent_id=f"p.{request_id}",
             start=base + 0.3, end=base + 0.9, process=0),
        span("execute", trace, f"w.{request_id}x", parent_id=f"w.{request_id}",
             start=base + 0.4, end=base + 0.8, process=0, cycles=1000),
        span("unit.conv", trace, f"w.{request_id}u", parent_id=f"w.{request_id}x",
             start=base + 0.4, end=base + 0.6, process=0, cycles=500),
    ]


# ----------------------------------------------------------------------
# Tree reconstruction.
# ----------------------------------------------------------------------


def test_out_of_order_jsonl_reconstructs_every_tree(tmp_path):
    spans = [s for i in range(4) for s in request_tree(i, base=float(i))]
    random.Random(7).shuffle(spans)  # children before parents, interleaved
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(path, spans) == 20
    trees = build_trees(read_jsonl(path))
    assert len(trees) == 4
    for tree in trees:
        assert len(tree.roots) == 1
        assert tree.orphans == []
        assert tree.span_count == 5
        names = [node.name for _, node in tree.roots[0].walk()]
        assert names == ["request", "queue", "worker.serve",
                         "execute", "unit.conv"]


def test_walk_orders_children_by_start_time():
    (tree,) = build_trees(request_tree(0))
    depths = {node.name: depth for depth, node in tree.roots[0].walk()}
    assert depths == {"request": 0, "queue": 1, "worker.serve": 1,
                      "execute": 2, "unit.conv": 3}


def test_missing_parent_is_an_orphan_not_a_crash():
    spans = request_tree(0)
    spans = [s for s in spans if s["span_id"] != "w.0"]  # drop the link
    (tree,) = build_trees(spans)
    assert len(tree.roots) == 1
    assert [o["name"] for o in tree.orphans] == ["execute"]
    # The root tree reaches request+queue; execute is orphaned (and
    # unit.conv, attached below it, is unreachable from the root).
    assert tree.span_count == 3  # request + queue + the orphan
    assert "ORPHAN execute" in render_tree(tree)


def test_parentless_spans_group_by_trace():
    spans = [span("a", "t1", "1"), span("b", "t1", "2"), span("c", "t2", "3")]
    trees = build_trees(spans)
    assert [t.trace_id for t in trees] == ["t1", "t2"]
    assert len(trees[0].roots) == 2 and len(trees[1].roots) == 1


# ----------------------------------------------------------------------
# Chrome trace-event export.
# ----------------------------------------------------------------------


def test_chrome_trace_structure():
    spans = request_tree(3, base=10.0)
    payload = to_chrome_trace(spans)
    events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    assert len(events) == len(spans)
    # Timestamps rebase to the earliest span.
    assert min(e["ts"] for e in events) == 0.0
    root = next(e for e in events if e["name"] == "request")
    assert root["dur"] == 1e6  # 1 s in µs
    assert root["pid"] == -1
    assert root["args"]["trace_id"] == "req-3"
    execute = next(e for e in events if e["name"] == "execute")
    assert execute["pid"] == 0 and execute["args"]["cycles"] == 1000
    # Metadata names both processes and the per-trace tracks.
    names = {(m["name"], m["pid"]): m["args"]["name"] for m in meta}
    assert names[("process_name", -1)] == "plane"
    assert names[("process_name", 0)] == "worker-0"
    assert names[("thread_name", -1)] == "req-3"
    json.loads(json.dumps(payload))  # serialisable as-is


def test_chrome_trace_empty_and_unfinished_spans():
    assert to_chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}
    unfinished = span("open", "t", "1")
    unfinished["end_s"] = None
    payload = to_chrome_trace([unfinished, span("done", "t", "2")])
    assert [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"] == ["done"]


def test_process_name_override():
    payload = to_chrome_trace(
        [span("csb.read", "vp", "1", process=0)], process_names={0: "csb"})
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    assert any(m["args"]["name"] == "csb" for m in meta)


# ----------------------------------------------------------------------
# write_trace / read_trace extension dispatch + round trips.
# ----------------------------------------------------------------------


def test_jsonl_round_trip_is_lossless(tmp_path):
    spans = request_tree(0)
    path = tmp_path / "t.jsonl"
    write_trace(path, spans)
    assert read_trace(path) == spans


def test_chrome_round_trip_preserves_identity_and_attrs(tmp_path):
    spans = request_tree(1, base=5.0)
    path = tmp_path / "t.json"
    assert write_trace(path, spans) == len(spans)
    loaded = read_trace(path)
    assert len(loaded) == len(spans)
    by_id = {s["span_id"]: s for s in loaded}
    for original in spans:
        got = by_id[original["span_id"]]
        assert got["name"] == original["name"]
        assert got["trace_id"] == original["trace_id"]
        assert got["parent_id"] == original["parent_id"]
        assert got["process"] == original["process"]
        assert got["attrs"] == original["attrs"]
        # Times are rebased but durations survive (µs precision).
        assert got["end_s"] - got["start_s"] == pytest.approx(
            original["end_s"] - original["start_s"])
    # The reconstructed spans still tree up with no orphans.
    (tree,) = build_trees(loaded)
    assert len(tree.roots) == 1 and tree.orphans == []


# ----------------------------------------------------------------------
# Summaries.
# ----------------------------------------------------------------------


def test_summarize_groups_by_name():
    spans = [s for i in range(3) for s in request_tree(i)]
    stats = summarize(spans)
    assert stats["request"]["count"] == 3
    assert stats["request"]["mean"] == 1.0
    assert stats["unit.conv"]["count"] == 3
    # Unfinished spans are excluded, not crashed on.
    open_span = span("open", "t", "x")
    open_span["end_s"] = None
    assert "open" not in summarize(spans + [open_span])


def test_render_summary_header_counts():
    spans = [s for i in range(2) for s in request_tree(i)]
    text = render_summary(spans)
    assert text.splitlines()[0] == "10 spans, 2 traces, 0 orphans"
    assert "worker.serve" in text
