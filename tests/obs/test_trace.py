"""Tracer/Span behaviour: identity, parenting, context, the null path."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    classify_resolution,
    record_unit_spans,
)


class FakeClock:
    """A controllable wall clock for deterministic span timestamps."""

    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def make_tracer(process=-1, now=100.0):
    clock = FakeClock(now)
    return Tracer(enabled=True, process=process, clock=clock), clock


def test_start_end_records_a_dict():
    tracer, clock = make_tracer()
    span = tracer.start("request", trace_id="req-1", request_id=1)
    clock.now = 101.5
    tracer.end(span, ok=True)
    (finished,) = tracer.finished
    assert finished == {
        "name": "request", "trace_id": "req-1", "span_id": span.span_id,
        "parent_id": None, "start_s": 100.0, "end_s": 101.5,
        "process": -1, "attrs": {"request_id": 1, "ok": True},
    }


def test_span_ids_embed_pid_and_are_unique():
    tracer, _ = make_tracer()
    ids = {tracer.start("s").span_id for _ in range(100)}
    assert len(ids) == 100
    assert all(i.startswith(f"{os.getpid():x}.") for i in ids)


def test_child_inherits_trace_id_from_parent_span():
    tracer, _ = make_tracer()
    root = tracer.start("request", trace_id="req-7")
    child = tracer.start("execute", parent=root)
    assert child.trace_id == "req-7"
    assert child.parent_id == root.span_id


def test_string_parent_is_a_foreign_span_id():
    tracer, _ = make_tracer()
    child = tracer.start("worker.serve", trace_id="req-3", parent="abc.5")
    assert child.parent_id == "abc.5"


def test_context_is_picklable_and_round_trips():
    tracer, _ = make_tracer()
    root = tracer.start("request", trace_id="req-9")
    ctx = Tracer.context(root)
    assert ctx == (root.trace_id, root.span_id)
    assert pickle.loads(pickle.dumps(ctx)) == ctx
    assert Tracer.context(NULL_SPAN) is None


def test_scope_records_and_tags_errors():
    tracer, clock = make_tracer()
    with tracer.span("ok-scope"):
        clock.now = 101.0
    with pytest.raises(RuntimeError):
        with tracer.span("bad-scope"):
            raise RuntimeError("boom")
    ok, bad = tracer.finished
    assert ok["name"] == "ok-scope" and "error" not in ok["attrs"]
    assert bad["attrs"]["error"] == "RuntimeError: boom"


def test_add_records_explicit_timestamps_and_process_override():
    tracer, _ = make_tracer(process=-1)
    span = tracer.add("run", 5.0, 7.5, trace_id="sim:req-0",
                      process=3, replica=3)
    assert span.start_s == 5.0 and span.end_s == 7.5
    assert tracer.finished[0]["process"] == 3
    assert tracer.finished[0]["attrs"] == {"replica": 3}


def test_ingest_and_drain_ship_spans_between_tracers():
    worker, _ = make_tracer(process=0)
    worker.end(worker.start("worker.serve", trace_id="req-0"))
    shipped = worker.drain()
    assert worker.finished == [] and len(shipped) == 1
    parent, _ = make_tracer(process=-1)
    parent.ingest(shipped)
    assert len(parent) == 1
    assert parent.finished[0]["process"] == 0


def test_two_tracers_never_collide_on_span_ids():
    # Same process here, but distinct counters; cross-process the pid
    # prefix disambiguates even identical counter values.
    a, _ = make_tracer()
    b, _ = make_tracer()
    span_a = a.start("x")
    span_b = b.start("x")
    assert span_a.span_id == span_b.span_id  # same pid, same counter...
    assert span_a.span_id.split(".")[0] == f"{os.getpid():x}"  # ...pid-scoped


# ----------------------------------------------------------------------
# The disabled path.
# ----------------------------------------------------------------------


def test_null_tracer_records_nothing():
    span = NULL_TRACER.start("request", trace_id="req-1", request_id=1)
    assert span is NULL_SPAN
    assert span.annotate(anything="goes") is NULL_SPAN
    NULL_TRACER.end(span, ok=True)
    with NULL_TRACER.span("scope"):
        pass
    NULL_TRACER.add("run", 0.0, 1.0)
    NULL_TRACER.ingest([{"name": "x"}])
    assert NULL_TRACER.finished == []
    assert len(NULL_TRACER) == 0
    assert NULL_SPAN.attrs == {}  # annotate never mutated the singleton


def test_disabled_end_of_null_span_is_noop_on_enabled_tracer():
    tracer, _ = make_tracer()
    tracer.end(NULL_SPAN)  # e.g. a span opened while disabled
    assert tracer.finished == []


# ----------------------------------------------------------------------
# Unit attribution + resolution classification.
# ----------------------------------------------------------------------


class FakeOpRecord:
    def __init__(self, sink, kind, start_cycle, end_cycle, group=0):
        self.sink = sink
        self.kind = kind
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle
        self.group = group


def test_record_unit_spans_places_proportionally():
    tracer, clock = make_tracer()
    parent = tracer.start("execute", trace_id="req-0")
    clock.now = 110.0  # 10 s of wall for 1000 cycles
    tracer.end(parent, cycles=1000)
    records = [FakeOpRecord("CONV", "conv", 0, 500),
               FakeOpRecord("SDP", "relu", 500, 1000)]
    record_unit_spans(tracer, parent, records, total_cycles=1000)
    _, conv, sdp = tracer.finished
    assert conv["name"] == "unit.conv"
    assert conv["start_s"] == 100.0 and conv["end_s"] == 105.0
    assert conv["attrs"]["cycles"] == 500
    assert sdp["name"] == "unit.sdp"
    assert sdp["start_s"] == 105.0 and sdp["end_s"] == 110.0
    assert conv["parent_id"] == parent.span_id
    assert conv["trace_id"] == "req-0"


def test_record_unit_spans_disabled_or_empty_is_noop():
    record_unit_spans(NULL_TRACER, NULL_SPAN, [FakeOpRecord("SDP", "r", 0, 1)], 1)
    tracer, _ = make_tracer()
    parent = tracer.start("execute")
    record_unit_spans(tracer, parent, [], 100)
    assert tracer.finished == []


def test_record_unit_spans_zero_total_cycles():
    tracer, clock = make_tracer()
    parent = tracer.start("execute")
    tracer.end(parent)
    record_unit_spans(tracer, parent, [FakeOpRecord("SDP", "r", 0, 1)], 0)
    unit = tracer.finished[-1]
    # Degenerate scale: spans collapse onto the parent's start, cycles
    # still exact in attrs.
    assert unit["start_s"] == unit["end_s"] == parent.start_s
    assert unit["attrs"]["cycles"] == 1


def test_classify_resolution():
    base = {"hits": 0, "misses": 0, "store_hits": 0}
    assert classify_resolution(base, {**base, "hits": 1}) == "memory"
    assert classify_resolution(
        base, {"hits": 0, "misses": 1, "store_hits": 1}) == "store"
    assert classify_resolution(
        base, {"hits": 0, "misses": 1, "store_hits": 0}) == "compile"


def test_span_to_dict_shape_is_the_wire_format():
    span = Span("x", "t", "s", None, 1.0, process=2, attrs={"k": "v"})
    span.end_s = 2.0
    assert span.to_dict() == {
        "name": "x", "trace_id": "t", "span_id": "s", "parent_id": None,
        "start_s": 1.0, "end_s": 2.0, "process": 2, "attrs": {"k": "v"},
    }
