"""The shared percentile implementation vs an independent reference.

`repro.obs.stats.percentile` is the single nearest-rank implementation
every layer reports through; these tests pin it against a from-scratch
reference (and, when hypothesis is installed, drive it with arbitrary
sample sets) so a "p99" means the same thing in serve metrics, cluster
metrics and trace summaries.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.stats import LatencySummary, percentile


def reference_percentile(samples, q):
    """Nearest-rank percentile, written the long way."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(len(ordered) * q / 100)
    return ordered[max(rank, 1) - 1]


def test_empty_is_zero():
    assert percentile([], 50) == 0.0
    assert percentile([], 99) == 0.0


def test_single_sample_is_every_percentile():
    for q in (0, 1, 50, 99, 100):
        assert percentile([3.25], q) == 3.25


def test_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_known_values():
    samples = list(range(1, 101))  # 1..100
    assert percentile(samples, 50) == 50
    assert percentile(samples, 99) == 99
    assert percentile(samples, 100) == 100
    assert percentile(samples, 0) == 1  # rank floors at 1


def test_order_independent():
    samples = [5.0, 1.0, 4.0, 2.0, 3.0]
    assert percentile(samples, 50) == percentile(sorted(samples), 50) == 3.0


def test_matches_reference_on_grid():
    samples = [0.5, 1.5, 2.5, 7.0, 7.0, 9.0, 100.0]
    for q in range(0, 101):
        assert percentile(samples, q) == reference_percentile(samples, q)


def test_summary_fields_agree_with_percentile():
    samples = [float(i) for i in range(1, 21)]
    summary = LatencySummary.of(samples)
    assert summary.count == 20
    assert summary.mean == pytest.approx(10.5)
    assert summary.p50 == percentile(samples, 50)
    assert summary.p99 == percentile(samples, 99)
    assert summary.max == 20.0
    assert summary.to_dict() == {
        "count": 20, "mean": summary.mean, "p50": summary.p50,
        "p99": summary.p99, "max": 20.0,
    }


def test_empty_summary():
    assert LatencySummary.of([]).to_dict() == {
        "count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0,
    }


# ----------------------------------------------------------------------
# Property tests (skipped cleanly when hypothesis is absent).
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

_samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=200,
)
_qs = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@given(_samples, _qs)
def test_property_matches_reference(samples, q):
    assert percentile(samples, q) == reference_percentile(samples, q)


@given(_samples, _qs)
def test_property_result_is_a_sample(samples, q):
    assert percentile(samples, q) in samples


@given(_samples)
def test_property_monotone_in_q(samples):
    values = [percentile(samples, q) for q in range(0, 101, 5)]
    assert values == sorted(values)
    assert values[-1] == max(samples)
