"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "nv_small" in out and "lenet5" in out


def test_run_lenet_timing(capsys):
    code = main(["run", "--model", "lenet5", "--fidelity", "timing"])
    out = capsys.readouterr().out
    assert code == 0
    assert "DONE" in out and "cycles" in out


def test_flow_dumps_artifacts(tmp_path, capsys):
    code = main(["flow", "--model", "lenet5", "--out", str(tmp_path)])
    assert code == 0
    names = {p.name for p in tmp_path.iterdir()}
    assert {"lenet5.prototxt", "lenet5.cfg", "lenet5.S", "lenet5.mem", "vp_trace.log"} <= names
    assert "weights.bin" in names


def test_table1(capsys):
    assert main(["table1"]) == 0
    assert "nv_small NVDLA" in capsys.readouterr().out


def test_synth_nv_small_fits(capsys):
    assert main(["synth", "--config", "nv_small"]) == 0
    assert "FITS" in capsys.readouterr().out


def test_synth_nv_full_fails(capsys):
    assert main(["synth", "--config", "nv_full"]) == 2
    assert "OVER-UTILIZED" in capsys.readouterr().out


def test_sanity_all_traces(capsys):
    assert main(["sanity"]) == 0
    out = capsys.readouterr().out
    assert out.count("PASS") == 4


def test_sanity_single_trace(capsys):
    assert main(["sanity", "--trace", "conv"]) == 0
    assert "conv" in capsys.readouterr().out


def test_serve_mixed_models(capsys):
    code = main(
        ["serve", "--models", "lenet5", "--requests", "3", "--fidelity", "timing"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "requests: 3" in out
    assert "hit rate" in out and "p99" in out


def test_bench_serve_reports_speedup(capsys):
    code = main(
        ["bench-serve", "--models", "lenet5", "--requests", "2", "--fidelity", "timing"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "speedup" in out and "req/s" in out


def test_calibrate_writes_table(tmp_path, capsys):
    path = tmp_path / "cal.json"
    code = main(
        ["calibrate", "--models", "lenet5", "--fidelity", "timing", "--out", str(path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert path.exists()
    assert "fast-path calibration" in out and "lenet5/nv_small/int8" in out


def test_serve_fast_mode_with_saved_calibration(tmp_path, capsys):
    path = tmp_path / "cal.json"
    assert main(
        ["calibrate", "--models", "lenet5", "--fidelity", "timing", "--out", str(path)]
    ) == 0
    code = main(
        [
            "serve", "--models", "lenet5", "--requests", "3",
            "--fidelity", "timing", "--mode", "fast", "--calibration", str(path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert f"loaded {path}" in out
    assert "requests: 3" in out
    assert "+fast" in out  # per-deployment metrics name the tier


def test_run_fast_mode_autocalibrates(capsys):
    code = main(["run", "--model", "lenet5", "--fidelity", "timing", "--mode", "fast"])
    out = capsys.readouterr().out
    assert code == 0
    assert "calibrating lenet5" in out
    assert "DONE" in out and "cycles" in out


def test_warmup_then_store_hits(tmp_path, capsys):
    root = str(tmp_path / "store")
    code = main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", root]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "compiled in" in out
    assert "1 artifact(s)" in out
    # Re-warming the same deployment fetches instead of recompiling.
    assert main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", root]
    ) == 0
    assert "fetched in" in capsys.readouterr().out


def test_warmup_writes_stats_json(tmp_path, capsys):
    import json

    root = str(tmp_path / "store")
    out_path = tmp_path / "warmup.json"
    code = main(
        [
            "warmup", "--models", "lenet5", "--fidelity", "timing",
            "--store", root, "--out", str(out_path),
        ]
    )
    capsys.readouterr()
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["entries"] == 1
    assert payload["cache"]["compiles"] == 1
    assert payload["stats"]["writes"] >= 1


def test_store_ls_verify_gc(tmp_path, capsys):
    root = str(tmp_path / "store")
    assert main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", root]
    ) == 0
    capsys.readouterr()

    assert main(["store", "ls", "--store", root]) == 0
    out = capsys.readouterr().out
    assert "lenet5/nv_small" in out and "1 artifact(s)" in out

    assert main(["store", "verify", "--store", root]) == 0
    assert "1 ok, 0 problem(s)" in capsys.readouterr().out

    # A gc bounded to zero bytes evicts the artifact...
    assert main(["store", "gc", "--store", root, "--max-mib", "0"]) == 0
    assert "1 evicted" in capsys.readouterr().out
    # ...after which ls shows an empty store.
    assert main(["store", "ls", "--store", root]) == 0
    assert "0 artifact(s)" in capsys.readouterr().out


def test_store_verify_fails_on_corruption(tmp_path, capsys):
    root = tmp_path / "store"
    assert main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", str(root)]
    ) == 0
    capsys.readouterr()
    victim = next((root / "objects").glob("*/*"))
    blob = bytearray(victim.read_bytes())
    blob[-1] ^= 0xFF
    victim.write_bytes(bytes(blob))
    assert main(["store", "verify", "--store", str(root)]) == 1
    assert "BAD" in capsys.readouterr().out


def test_serve_with_store_prewarms_from_disk(tmp_path, capsys):
    root = str(tmp_path / "store")
    assert main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", root]
    ) == 0
    capsys.readouterr()
    code = main(
        [
            "serve", "--models", "lenet5", "--requests", "3",
            "--fidelity", "timing", "--store", root,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "1 from store, 0 compiled" in out


def test_serve_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["serve", "--models", "nonexistent"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
