"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "nv_small" in out and "lenet5" in out


def test_run_lenet_timing(capsys):
    code = main(["run", "--model", "lenet5", "--fidelity", "timing"])
    out = capsys.readouterr().out
    assert code == 0
    assert "DONE" in out and "cycles" in out


def test_flow_dumps_artifacts(tmp_path, capsys):
    code = main(["flow", "--model", "lenet5", "--out", str(tmp_path)])
    assert code == 0
    names = {p.name for p in tmp_path.iterdir()}
    assert {"lenet5.prototxt", "lenet5.cfg", "lenet5.S", "lenet5.mem", "vp_trace.log"} <= names
    assert "weights.bin" in names


def test_table1(capsys):
    assert main(["table1"]) == 0
    assert "nv_small NVDLA" in capsys.readouterr().out


def test_synth_nv_small_fits(capsys):
    assert main(["synth", "--config", "nv_small"]) == 0
    assert "FITS" in capsys.readouterr().out


def test_synth_nv_full_fails(capsys):
    assert main(["synth", "--config", "nv_full"]) == 2
    assert "OVER-UTILIZED" in capsys.readouterr().out


def test_sanity_all_traces(capsys):
    assert main(["sanity"]) == 0
    out = capsys.readouterr().out
    assert out.count("PASS") == 4


def test_sanity_single_trace(capsys):
    assert main(["sanity", "--trace", "conv"]) == 0
    assert "conv" in capsys.readouterr().out


def test_serve_mixed_models(capsys):
    code = main(
        ["serve", "--models", "lenet5", "--requests", "3", "--fidelity", "timing"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "requests: 3" in out
    assert "hit rate" in out and "p99" in out


def test_bench_serve_reports_speedup(capsys):
    code = main(
        ["bench-serve", "--models", "lenet5", "--requests", "2", "--fidelity", "timing"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "speedup" in out and "req/s" in out


def test_calibrate_writes_table(tmp_path, capsys):
    path = tmp_path / "cal.json"
    code = main(
        ["calibrate", "--models", "lenet5", "--fidelity", "timing", "--out", str(path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert path.exists()
    assert "fast-path calibration" in out and "lenet5/nv_small/int8" in out


def test_serve_fast_mode_with_saved_calibration(tmp_path, capsys):
    path = tmp_path / "cal.json"
    assert main(
        ["calibrate", "--models", "lenet5", "--fidelity", "timing", "--out", str(path)]
    ) == 0
    code = main(
        [
            "serve", "--models", "lenet5", "--requests", "3",
            "--fidelity", "timing", "--mode", "fast", "--calibration", str(path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert f"loaded {path}" in out
    assert "requests: 3" in out
    assert "+fast" in out  # per-deployment metrics name the tier


def test_run_fast_mode_autocalibrates(capsys):
    code = main(["run", "--model", "lenet5", "--fidelity", "timing", "--mode", "fast"])
    out = capsys.readouterr().out
    assert code == 0
    assert "calibrating lenet5" in out
    assert "DONE" in out and "cycles" in out


def test_serve_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["serve", "--models", "nonexistent"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
