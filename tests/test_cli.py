"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "nv_small" in out and "lenet5" in out


def test_run_lenet_timing(capsys):
    code = main(["run", "--model", "lenet5", "--fidelity", "timing"])
    out = capsys.readouterr().out
    assert code == 0
    assert "DONE" in out and "cycles" in out


def test_flow_dumps_artifacts(tmp_path, capsys):
    code = main(["flow", "--model", "lenet5", "--out", str(tmp_path)])
    assert code == 0
    names = {p.name for p in tmp_path.iterdir()}
    assert {"lenet5.prototxt", "lenet5.cfg", "lenet5.S", "lenet5.mem", "vp_trace.log"} <= names
    assert "weights.bin" in names


def test_table1(capsys):
    assert main(["table1"]) == 0
    assert "nv_small NVDLA" in capsys.readouterr().out


def test_synth_nv_small_fits(capsys):
    assert main(["synth", "--config", "nv_small"]) == 0
    assert "FITS" in capsys.readouterr().out


def test_synth_nv_full_fails(capsys):
    assert main(["synth", "--config", "nv_full"]) == 2
    assert "OVER-UTILIZED" in capsys.readouterr().out


def test_sanity_all_traces(capsys):
    assert main(["sanity"]) == 0
    out = capsys.readouterr().out
    assert out.count("PASS") == 4


def test_sanity_single_trace(capsys):
    assert main(["sanity", "--trace", "conv"]) == 0
    assert "conv" in capsys.readouterr().out


def test_serve_mixed_models(capsys):
    code = main(
        ["serve", "--models", "lenet5", "--requests", "3", "--fidelity", "timing"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "requests: 3" in out
    assert "hit rate" in out and "p99" in out


def test_bench_serve_reports_speedup(capsys):
    code = main(
        ["bench-serve", "--models", "lenet5", "--requests", "2", "--fidelity", "timing"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "speedup" in out and "req/s" in out


def test_calibrate_writes_table(tmp_path, capsys):
    path = tmp_path / "cal.json"
    code = main(
        ["calibrate", "--models", "lenet5", "--fidelity", "timing", "--out", str(path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert path.exists()
    assert "fast-path calibration" in out and "lenet5/nv_small/int8" in out


def test_serve_fast_mode_with_saved_calibration(tmp_path, capsys):
    path = tmp_path / "cal.json"
    assert main(
        ["calibrate", "--models", "lenet5", "--fidelity", "timing", "--out", str(path)]
    ) == 0
    code = main(
        [
            "serve", "--models", "lenet5", "--requests", "3",
            "--fidelity", "timing", "--mode", "fast", "--calibration", str(path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert f"loaded {path}" in out
    assert "requests: 3" in out
    assert "+fast" in out  # per-deployment metrics name the tier


def test_run_fast_mode_autocalibrates(capsys):
    code = main(["run", "--model", "lenet5", "--fidelity", "timing", "--mode", "fast"])
    out = capsys.readouterr().out
    assert code == 0
    assert "calibrating lenet5" in out
    assert "DONE" in out and "cycles" in out


def test_warmup_then_store_hits(tmp_path, capsys):
    root = str(tmp_path / "store")
    code = main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", root]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "compiled in" in out
    assert "1 artifact(s)" in out
    # Re-warming the same deployment fetches instead of recompiling.
    assert main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", root]
    ) == 0
    assert "fetched in" in capsys.readouterr().out


def test_warmup_writes_stats_json(tmp_path, capsys):
    import json

    root = str(tmp_path / "store")
    out_path = tmp_path / "warmup.json"
    code = main(
        [
            "warmup", "--models", "lenet5", "--fidelity", "timing",
            "--store", root, "--out", str(out_path),
        ]
    )
    capsys.readouterr()
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["entries"] == 1
    assert payload["cache"]["compiles"] == 1
    assert payload["stats"]["writes"] >= 1


def test_store_ls_verify_gc(tmp_path, capsys):
    root = str(tmp_path / "store")
    assert main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", root]
    ) == 0
    capsys.readouterr()

    assert main(["store", "ls", "--store", root]) == 0
    out = capsys.readouterr().out
    assert "lenet5/nv_small" in out and "1 artifact(s)" in out

    assert main(["store", "verify", "--store", root]) == 0
    assert "1 ok, 0 problem(s)" in capsys.readouterr().out

    # A gc bounded to zero bytes evicts the artifact...
    assert main(["store", "gc", "--store", root, "--max-mib", "0"]) == 0
    assert "1 evicted" in capsys.readouterr().out
    # ...after which ls shows an empty store.
    assert main(["store", "ls", "--store", root]) == 0
    assert "0 artifact(s)" in capsys.readouterr().out


def test_store_verify_fails_on_corruption(tmp_path, capsys):
    root = tmp_path / "store"
    assert main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", str(root)]
    ) == 0
    capsys.readouterr()
    victim = next((root / "objects").glob("*/*"))
    blob = bytearray(victim.read_bytes())
    blob[-1] ^= 0xFF
    victim.write_bytes(bytes(blob))
    assert main(["store", "verify", "--store", str(root)]) == 1
    assert "BAD" in capsys.readouterr().out


def test_serve_with_store_prewarms_from_disk(tmp_path, capsys):
    root = str(tmp_path / "store")
    assert main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing", "--store", root]
    ) == 0
    capsys.readouterr()
    code = main(
        [
            "serve", "--models", "lenet5", "--requests", "3",
            "--fidelity", "timing", "--store", root,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "1 from store, 0 compiled" in out


def test_serve_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["serve", "--models", "nonexistent"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# ----------------------------------------------------------------------
# Observability: --trace-out/--metrics-out and the trace/metrics verbs.
# ----------------------------------------------------------------------


def test_serve_writes_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.json"
    code = main(
        [
            "serve", "--models", "lenet5", "--requests", "3",
            "--fidelity", "timing",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "spans written to" in out
    assert trace_path.exists() and metrics_path.exists()

    # Summarize reports the span population with no orphans.
    assert main(["trace", "summarize", "--in", str(trace_path)]) == 0
    summary = capsys.readouterr().out
    assert "0 orphans" in summary
    assert "request" in summary and "execute" in summary

    # View renders trees; exit 0 means every parent link resolved.
    assert main(["trace", "view", "--in", str(trace_path), "--limit", "2"]) == 0
    view = capsys.readouterr().out
    assert "trace req-0" in view and "execute" in view

    # Export converts to Perfetto JSON, which reads back as spans.
    perfetto = tmp_path / "trace.json"
    assert main(
        ["trace", "export", "--in", str(trace_path), "--out", str(perfetto)]
    ) == 0
    capsys.readouterr()
    import json

    payload = json.loads(perfetto.read_text())
    assert any(e.get("ph") == "X" for e in payload["traceEvents"])

    # The metrics verb renders the snapshot (and merging it with itself
    # doubles the counters).
    assert main(["metrics", str(metrics_path)]) == 0
    rendered = capsys.readouterr().out
    assert "serve.requests: 3" in rendered
    assert main(["metrics", str(metrics_path), str(metrics_path)]) == 0
    assert "serve.requests: 6" in capsys.readouterr().out


def test_trace_vp_converts_a_vp_log(tmp_path, capsys):
    from repro.vp.trace_log import TraceLog

    log = TraceLog()
    log.log_csb(12, 0xB010, 0x1, True)
    log.log_dbb(20, 0x100000, b"\x00" * 64, False)
    vp_log = tmp_path / "vp_trace.log"
    vp_log.write_text(log.render())
    out_path = tmp_path / "vp_trace.json"
    code = main(
        ["trace", "vp", "--in", str(vp_log), "--out", str(out_path)]
    )
    assert code == 0
    assert "2 transactions written" in capsys.readouterr().out
    import json

    payload = json.loads(out_path.read_text())
    names = [e["name"] for e in payload["traceEvents"] if e.get("ph") == "X"]
    assert names == ["csb.write", "dbb.read"]


def test_bench_cluster_writes_trace(tmp_path, capsys):
    trace_path = tmp_path / "cluster.jsonl"
    code = main(
        [
            "bench-cluster", "--models", "lenet5", "--requests", "40",
            "--policy", "round_robin", "--trace-out", str(trace_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "spans written to" in out
    from repro.obs import build_trees, read_trace

    spans = read_trace(trace_path)
    assert spans
    assert all(s["trace_id"].startswith("round_robin:req-") for s in spans)
    assert sum(len(t.orphans) for t in build_trees(spans)) == 0


def test_analyze_reports_clean(capsys):
    code = main(["analyze", "--models", "lenet5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "passes:" in out and "clean" in out
    assert "chains" in out and "surfaces" in out


def test_analyze_writes_diagnostics_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "diags.json"
    code = main(["analyze", "--models", "lenet5", "--out", str(out_path)])
    assert code == 0
    assert "diagnostics written to" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert payload["config"] == "nv_small"
    (report,) = payload["reports"]
    assert report["artifact"] == "lenet5/nv_small"
    assert report["clean"] is True and report["counts"]["error"] == 0


def test_run_verify_flags_clean_bundle(capsys):
    code = main(
        ["run", "--model", "lenet5", "--fidelity", "timing", "--verify"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "static analysis: clean" in out and "DONE" in out


def test_warmup_verify_and_store_verify_static(tmp_path, capsys):
    root = str(tmp_path / "store")
    code = main(
        ["warmup", "--models", "lenet5", "--fidelity", "timing",
         "--store", root, "--verify"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "static analysis: clean" in out

    assert main(["store", "verify", "--static", "--store", root]) == 0
    assert "1 ok, 0 problem(s)" in capsys.readouterr().out
