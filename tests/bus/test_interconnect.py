"""Address decoder, SmartConnect mux, clock-crossing interconnect."""

from __future__ import annotations

import pytest

from repro.bus.interconnect import (
    AddressDecoder,
    AxiInterconnect,
    AxiSmartConnect,
    LoopbackPort,
    Region,
)
from repro.bus.types import AccessType, Transfer
from repro.errors import AddressDecodeError, BusError


def _decoder():
    a, b = LoopbackPort(0x1000), LoopbackPort(0x1000)
    decoder = AddressDecoder(
        [Region("nvdla", 0x0, 0xFFF, a), Region("dram", 0x100000, 0x100FFF, b)]
    )
    return decoder, a, b


def test_decoder_routes_by_window():
    decoder, a, b = _decoder()
    decoder.write(0x10, 1)
    decoder.write(0x100010, 2)
    assert a.read(0x10).value() == 1
    assert b.read(0x10).value() == 2  # rebased into the slave's space
    assert decoder.routed == {"nvdla": 1, "dram": 1}


def test_decoder_rebase_can_be_disabled():
    backing = LoopbackPort(0x200)
    decoder = AddressDecoder([Region("flat", 0x100, 0x1FF, backing, rebase=False)])
    decoder.write(0x180, 7)
    assert backing.read(0x180).value() == 7


def test_unmapped_address_raises():
    decoder, _, _ = _decoder()
    with pytest.raises(AddressDecodeError):
        decoder.read(0x500000)


def test_burst_crossing_region_boundary_rejected():
    decoder, _, _ = _decoder()
    xfer = Transfer(address=0xFF8, size=4, burst_len=4, access=AccessType.READ)
    with pytest.raises(AddressDecodeError):
        decoder.transfer(xfer)


def test_overlapping_regions_rejected_at_construction():
    with pytest.raises(BusError):
        AddressDecoder(
            [
                Region("a", 0x0, 0xFFF, LoopbackPort()),
                Region("b", 0x800, 0x1FFF, LoopbackPort()),
            ]
        )


def test_region_limit_below_base_rejected():
    with pytest.raises(BusError):
        Region("bad", 0x100, 0x0, LoopbackPort())


def test_smartconnect_exclusive_ownership():
    memory = LoopbackPort(0x1000)
    mux = AxiSmartConnect(memory)
    assert mux.selected == "zynq"
    mux.transfer(
        Transfer(address=0, size=4, access=AccessType.WRITE, data=b"\x01\x00\x00\x00", master="zynq")
    )
    with pytest.raises(BusError):
        mux.read(0, master="soc")
    mux.select("soc")
    assert mux.read(0, master="soc").value() == 1
    assert mux.switches == 1


def test_smartconnect_unknown_owner():
    mux = AxiSmartConnect(LoopbackPort())
    with pytest.raises(BusError):
        mux.select("dsp")


def test_smartconnect_reselect_same_owner_not_counted():
    mux = AxiSmartConnect(LoopbackPort())
    mux.select("zynq")
    assert mux.switches == 0


def test_interconnect_scales_slow_side_cycles():
    class Slow(LoopbackPort):
        def transfer(self, xfer):
            reply = super().transfer(xfer)
            reply.cycles = 10  # slow-domain cycles
            return reply

    cdc = AxiInterconnect(Slow(), fast_hz=300e6, slow_hz=100e6, sync_cycles=2)
    reply = cdc.read(0, master="zynq")
    assert reply.cycles == 10 * 3 + 2
    assert cdc.ratio == 3.0


def test_interconnect_rejects_bad_frequencies():
    with pytest.raises(ValueError):
        AxiInterconnect(LoopbackPort(), fast_hz=0, slow_hz=1)
