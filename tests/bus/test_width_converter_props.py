"""AxiWidthConverter split/merge invariants across 32/64/128/256 bits.

Parametrised over every (master, slave) width pair: beat accounting
must conserve bytes, pacing must follow the slower side, data must pass
through untouched, and up/down conversion must be symmetric in cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bus.types import AccessType, BusPort, Reply, Transfer
from repro.bus.width_converter import AxiWidthConverter

WIDTHS = (32, 64, 128, 256)
SIZES = (1, 4, 8, 24, 64, 100, 256, 1000)


class EchoPort(BusPort):
    """Downstream stub: records transfers, echoes write data on reads."""

    def __init__(self, cycles: int = 1) -> None:
        self.cycles = cycles
        self.transfers: list[Transfer] = []

    def transfer(self, xfer: Transfer) -> Reply:
        self.transfers.append(xfer)
        if xfer.access is AccessType.WRITE:
            return Reply(cycles=self.cycles)
        return Reply(data=bytes(xfer.total_bytes), cycles=self.cycles)


def _burst(nbytes: int, write: bool = True) -> Transfer:
    size = 8 if nbytes % 8 == 0 else (4 if nbytes % 4 == 0 else 1)
    burst_len = nbytes // size
    return Transfer(
        address=0x1000,
        size=size,
        access=AccessType.WRITE if write else AccessType.READ,
        data=bytes(range(256)) * (nbytes // 256) + bytes(range(nbytes % 256))
        if write
        else None,
        burst_len=burst_len,
        master="dbb",
    )


@pytest.mark.parametrize("master_bits", WIDTHS)
@pytest.mark.parametrize("slave_bits", WIDTHS)
@pytest.mark.parametrize("nbytes", SIZES)
def test_beat_accounting_conserves_bytes(master_bits, slave_bits, nbytes):
    echo = EchoPort()
    conv = AxiWidthConverter(
        echo, master_width_bits=master_bits, slave_width_bits=slave_bits
    )
    conv.transfer(_burst(nbytes))

    master_bytes, slave_bytes = master_bits // 8, slave_bits // 8
    expected_master = max(1, -(-nbytes // master_bytes))
    expected_slave = max(1, -(-nbytes // slave_bytes))
    assert conv.stats.master_beats == expected_master
    assert conv.stats.slave_beats == expected_slave
    # Split/merge conservation: the beats cover the payload exactly
    # once, with strictly less than one trailing beat of padding.
    assert conv.stats.master_beats * master_bytes >= nbytes
    assert (conv.stats.master_beats - 1) * master_bytes < nbytes
    assert conv.stats.slave_beats * slave_bytes >= nbytes
    assert (conv.stats.slave_beats - 1) * slave_bytes < nbytes


@pytest.mark.parametrize("master_bits", WIDTHS)
@pytest.mark.parametrize("slave_bits", WIDTHS)
def test_pacing_follows_the_slower_side(master_bits, slave_bits):
    nbytes = 512
    echo = EchoPort()
    conv = AxiWidthConverter(
        echo, master_width_bits=master_bits, slave_width_bits=slave_bits
    )
    reply = conv.transfer(_burst(nbytes))
    narrow_beats = -(-nbytes // (min(master_bits, slave_bits) // 8))
    assert reply.cycles >= narrow_beats  # the narrow side paces
    assert reply.cycles >= echo.cycles  # never faster than downstream
    # stream_cycles agrees with the transfer path's pacing model.
    assert conv.stream_cycles(nbytes) == 1 + narrow_beats


@pytest.mark.parametrize("master_bits,slave_bits", [(64, 32), (128, 32), (256, 64)])
def test_up_down_conversion_is_symmetric(master_bits, slave_bits):
    down = AxiWidthConverter(
        EchoPort(), master_width_bits=master_bits, slave_width_bits=slave_bits
    )
    up = AxiWidthConverter(
        EchoPort(), master_width_bits=slave_bits, slave_width_bits=master_bits
    )
    for nbytes in SIZES:
        assert down.stream_cycles(nbytes) == up.stream_cycles(nbytes)
    assert down.ratio == pytest.approx(1 / up.ratio)


@pytest.mark.parametrize("master_bits", WIDTHS)
@pytest.mark.parametrize("slave_bits", WIDTHS)
def test_data_passes_through_unmodified(master_bits, slave_bits):
    echo = EchoPort()
    conv = AxiWidthConverter(
        echo, master_width_bits=master_bits, slave_width_bits=slave_bits
    )
    xfer = _burst(192)
    conv.transfer(xfer)
    assert len(echo.transfers) == 1
    assert echo.transfers[0].data == xfer.data
    assert echo.transfers[0].address == xfer.address
    # Reads return downstream data byte for byte.
    reply = conv.transfer(_burst(64, write=False))
    assert len(reply.data) == 64


@pytest.mark.parametrize("nbytes", SIZES)
def test_wider_slave_never_needs_more_cycles(nbytes):
    """Monotonicity over the paper's widening direction (64 → wider)."""
    cycles = [
        AxiWidthConverter(
            EchoPort(), master_width_bits=64, slave_width_bits=w
        ).stream_cycles(nbytes)
        for w in WIDTHS
    ]
    assert cycles == sorted(cycles, reverse=True)


def test_invalid_widths_rejected():
    for bad in (0, 7, 12, -32):
        with pytest.raises(ValueError):
            AxiWidthConverter(EchoPort(), master_width_bits=bad)
        with pytest.raises(ValueError):
            AxiWidthConverter(EchoPort(), slave_width_bits=bad)
