"""AHB-Lite, APB, AXI timing models and the bridges."""

from __future__ import annotations

import pytest

from repro.bus import (
    AhbLiteBus,
    AhbToApbBridge,
    AhbToAxiBridge,
    ApbBus,
    ApbToCsbAdapter,
    AxiBus,
    AxiWidthConverter,
)
from repro.bus.axi import AXI_BOUNDARY, AXI_MAX_BURST_BEATS, split_into_bursts
from repro.bus.interconnect import LoopbackPort
from repro.bus.types import AccessType, Transfer


def test_ahb_single_transfer_cost():
    bus = AhbLiteBus(LoopbackPort())
    reply = bus.read(0x10)
    # address phase (1) + one data cycle from the zero-wait slave
    assert reply.cycles == 2


def test_ahb_counts_traffic_per_master():
    bus = AhbLiteBus(LoopbackPort())
    bus.read(0, master="cpu")
    bus.read(4, master="cpu")
    bus.read(8, master="dma")
    assert bus.stats.by_master == {"cpu": 2, "dma": 1}
    assert bus.stats.bytes == 12


def test_apb_setup_access_phases():
    bus = ApbBus(LoopbackPort())
    reply = bus.write(0x10, 0x1234)
    assert reply.cycles == 2  # SETUP + ACCESS, zero wait states
    assert bus.stats.transfers == 1


def test_apb_no_burst_support_sequences_beats():
    bus = ApbBus(LoopbackPort())
    xfer = Transfer(address=0, size=4, burst_len=4, access=AccessType.WRITE, data=b"\x01" * 16)
    reply = bus.transfer(xfer)
    assert reply.cycles == 4 * 2
    assert bus.stats.transfers == 4


def test_apb_wait_states_from_slow_completer():
    class Slow(LoopbackPort):
        def transfer(self, xfer):
            reply = super().transfer(xfer)
            reply.cycles = 3  # 2 wait states
            return reply

    bus = ApbBus(Slow())
    assert bus.read(0).cycles == 2 + 2


def test_axi_issue_plus_beats():
    bus = AxiBus(LoopbackPort(1 << 13), data_width_bits=64, issue_latency=2)
    xfer = Transfer(address=0, size=4, burst_len=16, access=AccessType.READ)
    reply = bus.transfer(xfer)
    # 64 bytes / 8-byte beats = 8 beats + 2 issue
    assert reply.cycles >= 10


def test_axi_stream_cycles_monotone_in_size():
    bus = AxiBus(LoopbackPort(1 << 16), data_width_bits=64)
    assert bus.stream_cycles(0, 4096) > bus.stream_cycles(0, 256)


def test_burst_splitter_respects_4k_boundary():
    bursts = split_into_bursts(AXI_BOUNDARY - 64, 128, 8)
    assert all(
        (b.address % AXI_BOUNDARY) + b.nbytes <= AXI_BOUNDARY for b in bursts
    )
    assert sum(b.nbytes for b in bursts) == 128


def test_burst_splitter_respects_max_beats():
    bursts = split_into_bursts(0, AXI_MAX_BURST_BEATS * 8 * 3, 8)
    assert all(b.beats <= AXI_MAX_BURST_BEATS for b in bursts)


def test_burst_splitter_handles_unaligned_head():
    bursts = split_into_bursts(3, 16, 8)
    assert sum(b.nbytes for b in bursts) == 16


@pytest.mark.parametrize("bridge_cls", [AhbToApbBridge, AhbToAxiBridge, ApbToCsbAdapter])
def test_bridges_add_crossing_latency(bridge_cls):
    plain = LoopbackPort()
    bridged = bridge_cls(LoopbackPort())
    assert bridged.read(0).cycles == plain.read(0).cycles + bridge_cls.CROSSING_CYCLES
    assert bridged.transfers == 1


def test_bridge_preserves_data():
    bridge = AhbToApbBridge(LoopbackPort())
    bridge.write(0x40, 0xCAFED00D)
    assert bridge.read(0x40).value() == 0xCAFED00D


def test_register_path_stack_cost():
    """The full CPU→CSB path: AHB → AHB/APB bridge → APB → CSB adapter."""
    csb = LoopbackPort()
    path = AhbLiteBus(AhbToApbBridge(ApbBus(ApbToCsbAdapter(csb))))
    reply = path.write(0x10, 1)
    # 1 AHB addr + (APB 2 + adapter-crossed completer... ) — just pin it:
    assert 5 <= reply.cycles <= 10


def test_width_converter_down_conversion_paces_narrow_side():
    converter = AxiWidthConverter(LoopbackPort(1 << 13), 64, 32)
    xfer = Transfer(address=0, size=4, burst_len=16, access=AccessType.READ)  # 64B
    reply = converter.transfer(xfer)
    assert reply.cycles >= 16  # 16 narrow beats
    assert converter.stats.slave_beats == 16
    assert converter.stats.master_beats == 8
    assert converter.ratio == 2.0


def test_width_converter_stream_cycles():
    converter = AxiWidthConverter(LoopbackPort(), 64, 32)
    # narrow side dominates: 1 KiB / 4 B = 256 beats (+ packing)
    assert converter.stream_cycles(1024) == 257
    wide = AxiWidthConverter(LoopbackPort(), 64, 512)
    # up-conversion: master side dominates: 1 KiB / 8 B = 128
    assert wide.stream_cycles(1024) == 129


def test_width_converter_rejects_bad_widths():
    with pytest.raises(ValueError):
        AxiWidthConverter(LoopbackPort(), 0, 32)
