"""Transfer/Reply invariants and block helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bus.interconnect import LoopbackPort
from repro.bus.types import AccessType, Reply, Transfer
from repro.errors import AlignmentError, BusError


def test_read_transfer_defaults():
    xfer = Transfer(address=0x100)
    assert xfer.size == 4
    assert xfer.access is AccessType.READ
    assert xfer.total_bytes == 4
    assert xfer.end_address == 0x104


def test_write_requires_matching_payload():
    Transfer(address=0, access=AccessType.WRITE, data=b"\x00" * 4)
    with pytest.raises(BusError):
        Transfer(address=0, access=AccessType.WRITE, data=b"\x00" * 3)
    with pytest.raises(BusError):
        Transfer(address=0, access=AccessType.WRITE, data=None)


def test_read_must_not_carry_data():
    with pytest.raises(BusError):
        Transfer(address=0, access=AccessType.READ, data=b"\x00\x00\x00\x00")


def test_alignment_enforced():
    with pytest.raises(AlignmentError):
        Transfer(address=2, size=4)
    Transfer(address=2, size=2)  # fine


def test_invalid_beat_size_rejected():
    with pytest.raises(BusError):
        Transfer(address=0, size=3)


def test_burst_geometry():
    xfer = Transfer(address=0x10, size=4, burst_len=8, access=AccessType.WRITE, data=b"\xAA" * 32)
    assert xfer.total_bytes == 32
    assert xfer.end_address == 0x30
    with pytest.raises(BusError):
        Transfer(address=0, burst_len=0)


def test_reply_value_little_endian():
    assert Reply(data=b"\x78\x56\x34\x12").value() == 0x12345678


def test_port_read_write_convenience():
    port = LoopbackPort(256)
    port.write(0x10, 0xDEADBEEF)
    assert port.read(0x10).value() == 0xDEADBEEF
    port.write(0x20, 0xAB, size=1)
    assert port.read(0x20, size=1).value() == 0xAB


@given(data=st.binary(min_size=1, max_size=257), offset=st.integers(0, 64))
def test_block_roundtrip_any_alignment(data, offset):
    port = LoopbackPort(1024)
    port.write_block(offset, data)
    reply = port.read_block(offset, len(data))
    assert reply.data == data
    assert reply.cycles >= 1


def test_block_cycles_scale_with_size():
    port = LoopbackPort(1 << 16)
    small = port.write_block(0, b"\x00" * 16).cycles
    large = port.write_block(0, b"\x00" * 4096).cycles
    assert large > small
