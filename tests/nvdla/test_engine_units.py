"""Engine coverage for SDP-standalone, CDP, RUBIK and failure injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision
from repro.nvdla.csb import UNIT_BASES
from repro.nvdla.layout import pack_feature, unpack_feature

from tests.nvdla.test_engine import EngineHarness


def _write_feature(harness, address, tensor, precision=Precision.INT8):
    atom = harness.config.atom_channels(precision)
    harness.memory.write(address, pack_feature(tensor, atom, precision))


def _read_feature(harness, address, shape, precision=Precision.INT8):
    atom = harness.config.atom_channels(precision)
    c, h, w = shape
    nbytes = -(-c // atom) * atom * h * w * precision.itemsize
    return unpack_feature(harness.memory.read(address, nbytes), shape, atom, precision)


def test_sdp_standalone_eltwise_add(rng):
    harness = EngineHarness()
    a = rng.integers(-40, 40, size=(8, 4, 4), dtype=np.int8)
    b = rng.integers(-40, 40, size=(8, 4, 4), dtype=np.int8)
    _write_feature(harness, 0x1000, a)
    _write_feature(harness, 0x2000, b)
    for unit in ("SDP_RDMA", "SDP"):
        harness.select(unit, 0)
    harness.write("SDP_RDMA", "D_FEATURE_MODE_CFG", 1)  # memory source
    harness.tensor("SDP_RDMA", "D_SRC", 0x1000, (8, 4, 4))
    harness.write("SDP_RDMA", "D_BRDMA_CFG", 0)
    harness.write("SDP_RDMA", "D_NRDMA_CFG", 0)
    harness.write("SDP_RDMA", "D_ERDMA_CFG", 1)
    harness.tensor("SDP_RDMA", "D_EW", 0x2000, (8, 4, 4))
    harness.write("SDP", "D_MISC_CFG", 0)
    harness.write("SDP", "D_OUT_PRECISION", 0)
    harness.write("SDP", "D_DATA_CUBE_WIDTH", 4)
    harness.write("SDP", "D_DATA_CUBE_HEIGHT", 4)
    harness.write("SDP", "D_DATA_CUBE_CHANNEL", 8)
    harness.tensor("SDP", "D_DST", 0x3000, (8, 4, 4))
    harness.write("SDP", "D_DP_EW_CFG", 1)  # ADD
    harness.write("SDP", "D_ACT_CFG", 1)  # ReLU
    harness.write("SDP", "D_CVT_MULT", 1)
    harness.enable("SDP_RDMA")
    harness.enable("SDP")
    harness.clock.fast_forward_to_next_event()
    out = _read_feature(harness, 0x3000, (8, 4, 4))
    expected = np.clip(
        np.maximum(a.astype(np.int64) + b.astype(np.int64), 0), -128, 127
    ).astype(np.int8)
    assert np.array_equal(out, expected)
    assert harness.engine.records[0].kind == "sdp"


def test_cdp_lrn_runs_functionally(rng):
    harness = EngineHarness()
    x = rng.integers(-60, 60, size=(8, 3, 3), dtype=np.int8)
    _write_feature(harness, 0x1000, x)
    from repro.nvdla.descriptors import f32_to_bits

    harness.select("CDP_RDMA", 0)
    harness.select("CDP", 0)
    harness.tensor("CDP_RDMA", "D_SRC", 0x1000, (8, 3, 3))
    harness.write("CDP", "D_MISC_CFG", 0)
    harness.write("CDP", "D_LRN_LOCAL_SIZE", 5)
    harness.write("CDP", "D_LRN_ALPHA", f32_to_bits(1e-4))
    harness.write("CDP", "D_LRN_BETA", f32_to_bits(0.75))
    harness.write("CDP", "D_LRN_K", f32_to_bits(1.0))
    harness.tensor("CDP", "D_DST", 0x2000, (8, 3, 3))
    harness.enable("CDP_RDMA")
    harness.enable("CDP")
    harness.clock.fast_forward_to_next_event()
    out = _read_feature(harness, 0x2000, (8, 3, 3))
    from repro.nvdla.compute import lrn

    assert np.array_equal(out, lrn(x, 5, 1e-4, 0.75, 1.0))
    assert harness.engine.records[0].kind == "cdp"


def test_rubik_contract_on_nv_full(rng):
    harness = EngineHarness(config=NV_FULL)
    precision = Precision.INT8
    atom = NV_FULL.atom_channels(precision)
    x = rng.integers(-50, 50, size=(atom, 4, 4), dtype=np.int8)
    _write_feature(harness, 0x1000, x, precision)
    harness.select("RUBIK", 0)
    harness.write("RUBIK", "D_MISC_CFG", 0)  # int8, contract
    harness.tensor("RUBIK", "D_DAIN", 0x1000, (atom, 4, 4), precision)
    harness.tensor("RUBIK", "D_DAOUT", 0x8000, (atom, 4, 4), precision)
    harness.enable("RUBIK")
    harness.clock.fast_forward_to_next_event()
    out = _read_feature(harness, 0x8000, (atom, 4, 4), precision)
    assert np.array_equal(out, x)


def test_rubik_rejected_on_nv_small():
    harness = EngineHarness(config=NV_SMALL)
    harness.select("RUBIK", 0)
    harness.write("RUBIK", "D_MISC_CFG", 0)
    harness.tensor("RUBIK", "D_DAIN", 0x1000, (8, 2, 2))
    harness.tensor("RUBIK", "D_DAOUT", 0x2000, (8, 2, 2))
    with pytest.raises(ConfigurationError):
        harness.enable("RUBIK")


# ----------------------------------------------------------------------
# Failure injection: malformed descriptors must fail at enable time
# with a diagnosable error, not corrupt memory.
# ----------------------------------------------------------------------


def test_conv_with_wrong_output_dims_rejected(rng):
    harness = EngineHarness()
    harness.select("PDP_RDMA", 0)
    harness.select("PDP", 0)
    harness.tensor("PDP_RDMA", "D_SRC", 0x1000, (8, 6, 6))
    harness.write("PDP", "D_MISC_CFG", 0)
    harness.write("PDP", "D_POOLING_METHOD", 0)
    harness.write("PDP", "D_POOLING_KERNEL_WIDTH", 2)
    harness.write("PDP", "D_POOLING_KERNEL_HEIGHT", 2)
    harness.write("PDP", "D_POOLING_STRIDE_X", 2)
    harness.write("PDP", "D_POOLING_STRIDE_Y", 2)
    for side in ("LEFT", "RIGHT", "TOP", "BOTTOM"):
        harness.write("PDP", f"D_POOLING_PAD_{side}", 0)
    harness.tensor("PDP", "D_DST", 0x2000, (8, 5, 5))  # wrong: should be 3x3
    harness.enable("PDP_RDMA")
    with pytest.raises(ConfigurationError):
        harness.enable("PDP")


def test_pdp_bad_method_code_rejected():
    harness = EngineHarness()
    harness.select("PDP_RDMA", 0)
    harness.select("PDP", 0)
    harness.tensor("PDP_RDMA", "D_SRC", 0x1000, (8, 4, 4))
    harness.write("PDP", "D_POOLING_METHOD", 7)
    harness.write("PDP", "D_POOLING_KERNEL_WIDTH", 2)
    harness.write("PDP", "D_POOLING_KERNEL_HEIGHT", 2)
    harness.write("PDP", "D_POOLING_STRIDE_X", 2)
    harness.write("PDP", "D_POOLING_STRIDE_Y", 2)
    for side in ("LEFT", "RIGHT", "TOP", "BOTTOM"):
        harness.write("PDP", f"D_POOLING_PAD_{side}", 0)
    harness.tensor("PDP", "D_DST", 0x2000, (8, 2, 2))
    harness.enable("PDP_RDMA")
    with pytest.raises(ConfigurationError):
        harness.enable("PDP")


def test_sdp_eltwise_without_erdma_rejected():
    harness = EngineHarness()
    for unit in ("SDP_RDMA", "SDP"):
        harness.select(unit, 0)
    harness.write("SDP_RDMA", "D_FEATURE_MODE_CFG", 1)
    harness.tensor("SDP_RDMA", "D_SRC", 0x1000, (8, 2, 2))
    harness.write("SDP_RDMA", "D_ERDMA_CFG", 0)  # eltwise read NOT enabled
    harness.write("SDP", "D_MISC_CFG", 0)
    harness.write("SDP", "D_OUT_PRECISION", 0)
    harness.write("SDP", "D_DATA_CUBE_WIDTH", 2)
    harness.write("SDP", "D_DATA_CUBE_HEIGHT", 2)
    harness.write("SDP", "D_DATA_CUBE_CHANNEL", 8)
    harness.tensor("SDP", "D_DST", 0x2000, (8, 2, 2))
    harness.write("SDP", "D_DP_EW_CFG", 1)  # ...but eltwise requested
    harness.write("SDP", "D_CVT_MULT", 1)
    harness.enable("SDP_RDMA")
    with pytest.raises(ConfigurationError):
        harness.enable("SDP")


def test_cdma_weight_bytes_mismatch_rejected(rng):
    """A wrong D_WEIGHT_BYTES (the classic integration bug) is caught."""
    harness = EngineHarness()
    for unit in ("CDMA", "CSC", "CMAC_A", "CMAC_B", "CACC", "SDP_RDMA", "SDP"):
        harness.select(unit, 0)
    harness.write("CDMA", "D_MISC_CFG", 0)
    harness.tensor("CDMA", "D_DAIN", 0x1000, (8, 4, 4))
    harness.write("CDMA", "D_WEIGHT_ADDR_LOW", 0x8000)
    harness.write("CDMA", "D_WEIGHT_BYTES", 17)  # bogus
    harness.write("CDMA", "D_CONV_STRIDE_X", 1)
    harness.write("CDMA", "D_CONV_STRIDE_Y", 1)
    for side in ("LEFT", "RIGHT", "TOP", "BOTTOM"):
        harness.write("CDMA", f"D_ZERO_PADDING_{side}", 0)
    harness.write("CSC", "D_MISC_CFG", 0)
    harness.write("CSC", "D_WEIGHT_SIZE_K", 8)
    harness.write("CSC", "D_WEIGHT_SIZE_C", 8)
    harness.write("CSC", "D_WEIGHT_SIZE_R", 3)
    harness.write("CSC", "D_WEIGHT_SIZE_S", 3)
    harness.write("CSC", "D_DATAOUT_WIDTH", 2)
    harness.write("CSC", "D_DATAOUT_HEIGHT", 2)
    harness.write("CACC", "D_DATAOUT_WIDTH", 2)
    harness.write("CACC", "D_DATAOUT_HEIGHT", 2)
    harness.write("CACC", "D_DATAOUT_CHANNEL", 8)
    harness.write("SDP_RDMA", "D_FEATURE_MODE_CFG", 0)
    harness.write("SDP", "D_MISC_CFG", 0)
    harness.write("SDP", "D_OUT_PRECISION", 0)
    harness.write("SDP", "D_DATA_CUBE_WIDTH", 2)
    harness.write("SDP", "D_DATA_CUBE_HEIGHT", 2)
    harness.write("SDP", "D_DATA_CUBE_CHANNEL", 8)
    harness.tensor("SDP", "D_DST", 0x20000, (8, 2, 2))
    harness.write("SDP", "D_CVT_MULT", 1)
    for unit in ("CACC", "CMAC_A", "CMAC_B", "CSC", "CDMA"):
        harness.enable(unit)
    with pytest.raises(ConfigurationError):
        harness.enable("SDP")


def test_failed_launch_leaves_no_record():
    harness = EngineHarness()
    harness.select("PDP_RDMA", 0)
    harness.select("PDP", 0)
    harness.tensor("PDP_RDMA", "D_SRC", 0x1000, (8, 4, 4))
    harness.write("PDP", "D_POOLING_METHOD", 9)
    harness.write("PDP", "D_POOLING_KERNEL_WIDTH", 2)
    harness.write("PDP", "D_POOLING_KERNEL_HEIGHT", 2)
    harness.write("PDP", "D_POOLING_STRIDE_X", 2)
    harness.write("PDP", "D_POOLING_STRIDE_Y", 2)
    for side in ("LEFT", "RIGHT", "TOP", "BOTTOM"):
        harness.write("PDP", f"D_POOLING_PAD_{side}", 0)
    harness.tensor("PDP", "D_DST", 0x2000, (8, 2, 2))
    harness.enable("PDP_RDMA")
    with pytest.raises(ConfigurationError):
        harness.enable("PDP")
    assert harness.engine.records == []
    assert not harness.engine.irq_asserted
