"""Descriptor validation paths not covered elsewhere."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.nvdla.config import Precision
from repro.nvdla.descriptors import (
    BdmaDescriptor,
    CdpDescriptor,
    ConvDescriptor,
    PdpDescriptor,
    PoolMode,
    RubikDescriptor,
    SdpDescriptor,
    SdpSource,
    TensorDesc,
    bits_to_f32,
    f32_to_bits,
)


def _tensor(c=8, h=4, w=4, address=0x1000):
    return TensorDesc(address=address, width=w, height=h, channels=c, precision=Precision.INT8)


def test_f32_bits_roundtrip():
    for value in (0.0, 1.0, -2.5, 1e-4, 0.75, 3.14159):
        assert bits_to_f32(f32_to_bits(value)) == pytest.approx(value, rel=1e-6)


def test_tensor_desc_properties():
    t = _tensor(c=20, h=3, w=5)
    assert t.shape == (20, 3, 5)
    assert t.elements == 300
    assert t.packed_bytes(8) == 3 * 3 * 5 * 8  # 3 surfaces


def test_conv_descriptor_channel_mismatch():
    with pytest.raises(ConfigurationError):
        ConvDescriptor(
            input=_tensor(c=8),
            weight_address=0,
            kernel_k=4,
            kernel_c=16,  # != input channels
            kernel_r=1,
            kernel_s=1,
            stride_x=1,
            stride_y=1,
            pad_left=0,
            pad_top=0,
            pad_right=0,
            pad_bottom=0,
            precision=Precision.INT8,
            out_width=4,
            out_height=4,
        )


def test_conv_descriptor_macs_and_padding():
    desc = ConvDescriptor(
        input=_tensor(c=3, h=6, w=6),
        weight_address=0,
        kernel_k=5,
        kernel_c=3,
        kernel_r=3,
        kernel_s=3,
        stride_x=1,
        stride_y=1,
        pad_left=0,
        pad_top=0,
        pad_right=0,
        pad_bottom=0,
        precision=Precision.INT8,
        out_width=4,
        out_height=4,
    )
    assert desc.macs == 5 * 3 * 9 * 16
    assert desc.padded_macs(8, 8) == 8 * 8 * 9 * 16


def test_pdp_descriptor_channel_change_rejected():
    with pytest.raises(ConfigurationError):
        PdpDescriptor(
            input=_tensor(c=8),
            output=_tensor(c=16, h=2, w=2, address=0x2000),
            mode=PoolMode.MAX,
            kernel_w=2,
            kernel_h=2,
            stride_x=2,
            stride_y=2,
        )


def test_cdp_descriptor_validation():
    with pytest.raises(ConfigurationError):
        CdpDescriptor(
            input=_tensor(),
            output=_tensor(address=0x2000),
            local_size=4,  # must be odd
            alpha=1e-4,
            beta=0.75,
            k=1.0,
        )
    with pytest.raises(ConfigurationError):
        CdpDescriptor(
            input=_tensor(),
            output=_tensor(h=2, address=0x2000),  # shape change
            local_size=5,
            alpha=1e-4,
            beta=0.75,
            k=1.0,
        )


def test_bdma_descriptor_geometry():
    desc = BdmaDescriptor(src_address=0, dst_address=0x100, line_bytes=64, lines=4)
    assert desc.total_bytes == 256
    with pytest.raises(ConfigurationError):
        BdmaDescriptor(src_address=0, dst_address=0, line_bytes=0, lines=1)


def test_rubik_descriptor_element_preservation():
    with pytest.raises(ConfigurationError):
        RubikDescriptor(
            input=_tensor(c=8, h=4, w=4),
            output=_tensor(c=8, h=4, w=2, address=0x2000),  # fewer elements
        )
    with pytest.raises(ConfigurationError):
        RubikDescriptor(input=_tensor(), output=_tensor(address=0x2000), mode="rotate")


def test_sdp_descriptor_converter_ranges():
    with pytest.raises(ConfigurationError):
        SdpDescriptor(
            source=SdpSource.FLYING,
            output=_tensor(),
            out_precision=Precision.INT8,
            cvt_multiplier=1 << 16,
        )
    with pytest.raises(ConfigurationError):
        SdpDescriptor(
            source=SdpSource.FLYING,
            output=_tensor(),
            out_precision=Precision.INT8,
            ew_cvt_shift=40,
        )
