"""Engine-level tests: CSB decode, op launch, completion, fidelity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import Clock
from repro.errors import ConfigurationError, RegisterError
from repro.mem import SparseMemory
from repro.nvdla import NV_FULL, NV_SMALL, NvdlaEngine
from repro.nvdla.config import Precision
from repro.nvdla.csb import UNIT_BASES, register_address
from repro.nvdla.layout import feature_strides, pack_feature, pack_weights, unpack_feature, weight_size_bytes
from repro.nvdla.registers import D_OP_ENABLE, S_POINTER
from repro.nvdla.units.glb import HW_VERSION, HW_VERSION_VALUE, INTR_STATUS

from tests.conftest import DirectDbbPort


class EngineHarness:
    """Programs hardware ops through the CSB like the runtime does."""

    def __init__(self, config=NV_SMALL, fidelity="functional"):
        self.memory = SparseMemory(1 << 24)
        self.clock = Clock(100e6)
        self.engine = NvdlaEngine(
            config, DirectDbbPort(self.memory), self.clock, fidelity=fidelity
        )
        self.config = config

    def write(self, unit: str, register: str, value: int) -> None:
        offset = self.engine.units[unit].offset_of(register)
        self.engine.csb_write(UNIT_BASES[unit] + offset, value)

    def tensor(self, unit: str, prefix: str, address: int, shape, precision=Precision.INT8):
        atom = self.config.atom_channels(precision)
        c, h, w = shape
        line, surf = feature_strides(shape, atom, precision)
        self.write(unit, f"{prefix}_ADDR_HIGH", address >> 32)
        self.write(unit, f"{prefix}_ADDR_LOW", address & 0xFFFFFFFF)
        self.write(unit, f"{prefix}_WIDTH", w)
        self.write(unit, f"{prefix}_HEIGHT", h)
        self.write(unit, f"{prefix}_CHANNEL", c)
        self.write(unit, f"{prefix}_LINE_STRIDE", line)
        self.write(unit, f"{prefix}_SURF_STRIDE", surf)

    def enable(self, unit: str) -> None:
        self.engine.csb_write(UNIT_BASES[unit] + D_OP_ENABLE, 1)

    def select(self, unit: str, group: int) -> None:
        self.engine.csb_write(UNIT_BASES[unit] + S_POINTER, group)

    def program_pool(self, in_addr, out_addr, shape, group=0):
        c, h, w = shape
        for unit in ("PDP_RDMA", "PDP"):
            self.select(unit, group)
        self.tensor("PDP_RDMA", "D_SRC", in_addr, shape)
        self.write("PDP", "D_MISC_CFG", 0)
        self.write("PDP", "D_POOLING_METHOD", 0)
        self.write("PDP", "D_POOLING_KERNEL_WIDTH", 2)
        self.write("PDP", "D_POOLING_KERNEL_HEIGHT", 2)
        self.write("PDP", "D_POOLING_STRIDE_X", 2)
        self.write("PDP", "D_POOLING_STRIDE_Y", 2)
        for side in ("LEFT", "RIGHT", "TOP", "BOTTOM"):
            self.write("PDP", f"D_POOLING_PAD_{side}", 0)
        self.tensor("PDP", "D_DST", out_addr, (c, h // 2, w // 2))
        self.enable("PDP_RDMA")
        self.enable("PDP")


def test_csb_address_decode_round_trip():
    assert register_address("SDP", 0x10) == UNIT_BASES["SDP"] + 0x10
    harness = EngineHarness()
    assert harness.engine.csb_read(register_address("GLB", HW_VERSION)) == HW_VERSION_VALUE


def test_csb_out_of_range_rejected():
    harness = EngineHarness()
    with pytest.raises(RegisterError):
        harness.engine.csb_read(0x80000)
    with pytest.raises(RegisterError):
        harness.engine.csb_read(0x1500)  # hole between GLB and MCIF


def test_pool_op_runs_and_interrupts(rng):
    harness = EngineHarness()
    x = rng.integers(-50, 50, size=(8, 6, 6), dtype=np.int8)
    harness.memory.write(0x1000, pack_feature(x, 8, Precision.INT8))
    harness.program_pool(0x1000, 0x2000, (8, 6, 6))
    assert not harness.engine.irq_asserted
    assert harness.engine.busy()
    harness.clock.fast_forward_to_next_event()
    assert harness.engine.irq_asserted
    out = unpack_feature(harness.memory.read(0x2000, 8 * 3 * 3), (8, 3, 3), 8, Precision.INT8)
    expected = x.reshape(8, 3, 2, 3, 2).max(axis=(2, 4))
    assert np.array_equal(out, expected)


def test_interrupt_clear_via_csb(rng):
    harness = EngineHarness()
    x = rng.integers(-5, 5, size=(8, 4, 4), dtype=np.int8)
    harness.memory.write(0x1000, pack_feature(x, 8, Precision.INT8))
    harness.program_pool(0x1000, 0x2000, (8, 4, 4))
    harness.clock.fast_forward_to_next_event()
    status = harness.engine.csb_read(register_address("GLB", INTR_STATUS))
    harness.engine.csb_write(register_address("GLB", INTR_STATUS), status)
    assert not harness.engine.irq_asserted


def test_pingpong_back_to_back_ops(rng):
    harness = EngineHarness()
    x = rng.integers(-50, 50, size=(8, 4, 4), dtype=np.int8)
    harness.memory.write(0x1000, pack_feature(x, 8, Precision.INT8))
    harness.program_pool(0x1000, 0x2000, (8, 4, 4), group=0)
    # Program group 1 while group 0 runs.
    harness.memory.write(0x3000, pack_feature(x, 8, Precision.INT8))
    harness.program_pool(0x3000, 0x4000, (8, 4, 4), group=1)
    harness.clock.fast_forward_to_next_event()  # completes g0, launches g1
    harness.clock.fast_forward_to_next_event()
    assert len(harness.engine.records) == 2
    assert harness.engine.records[0].group == 0
    assert harness.engine.records[1].group == 1
    out = unpack_feature(harness.memory.read(0x4000, 8 * 2 * 2), (8, 2, 2), 8, Precision.INT8)
    expected = x.reshape(8, 2, 2, 2, 2).max(axis=(2, 4))
    assert np.array_equal(out, expected)


def test_timing_fidelity_skips_data(rng):
    harness = EngineHarness(fidelity="timing")
    harness.program_pool(0x1000, 0x2000, (8, 4, 4))
    harness.clock.fast_forward_to_next_event()
    assert harness.engine.irq_asserted
    # No functional write happened.
    assert harness.memory.read(0x2000, 4) == b"\x00" * 4
    assert harness.engine.records[0].timing.total > 0


def test_bad_fidelity_rejected():
    with pytest.raises(ConfigurationError):
        NvdlaEngine(NV_SMALL, DirectDbbPort(SparseMemory(1024)), Clock(), fidelity="magic")


def test_fp16_rejected_on_nv_small():
    harness = EngineHarness()
    harness.select("PDP_RDMA", 0)
    harness.select("PDP", 0)
    harness.tensor("PDP_RDMA", "D_SRC", 0x1000, (8, 4, 4))
    harness.write("PDP", "D_MISC_CFG", 1)  # fp16 on an int8-only build
    harness.write("PDP", "D_POOLING_METHOD", 0)
    harness.write("PDP", "D_POOLING_KERNEL_WIDTH", 2)
    harness.write("PDP", "D_POOLING_KERNEL_HEIGHT", 2)
    harness.write("PDP", "D_POOLING_STRIDE_X", 2)
    harness.write("PDP", "D_POOLING_STRIDE_Y", 2)
    for side in ("LEFT", "RIGHT", "TOP", "BOTTOM"):
        self_pad = 0
        harness.write("PDP", f"D_POOLING_PAD_{side}", self_pad)
    harness.tensor("PDP", "D_DST", 0x2000, (8, 2, 2))
    harness.enable("PDP_RDMA")
    with pytest.raises(ConfigurationError):
        harness.enable("PDP")


def test_conv_requires_all_producers_before_launch(rng):
    """Enabling SDP without the conv units must not launch anything."""
    harness = EngineHarness()
    # minimal SDP flying config
    harness.select("SDP_RDMA", 0)
    harness.select("SDP", 0)
    harness.write("SDP_RDMA", "D_FEATURE_MODE_CFG", 0)
    harness.write("SDP", "D_MISC_CFG", 0)
    harness.write("SDP", "D_OUT_PRECISION", 0)
    harness.write("SDP", "D_DATA_CUBE_WIDTH", 2)
    harness.write("SDP", "D_DATA_CUBE_HEIGHT", 2)
    harness.write("SDP", "D_DATA_CUBE_CHANNEL", 8)
    harness.tensor("SDP", "D_DST", 0x2000, (8, 2, 2))
    harness.write("SDP", "D_CVT_MULT", 1)
    harness.enable("SDP")
    assert not harness.engine.busy()
    assert harness.engine.records == []


def test_full_conv_through_engine(rng):
    """Conv + bias + relu on nv_full FP16, cross-checked numerically."""
    harness = EngineHarness(config=NV_FULL)
    precision = Precision.FP16
    atom = NV_FULL.atom_channels(precision)
    ac, ak = NV_FULL.atoms(precision)
    x = rng.normal(size=(3, 6, 6)).astype(np.float16)
    w = rng.normal(size=(4, 3, 3, 3)).astype(np.float16)
    harness.memory.write(0x1000, pack_feature(x, atom, precision))
    harness.memory.write(0x8000, pack_weights(w, ac, ak, precision))
    wbytes = weight_size_bytes(w.shape, ac, ak, precision)

    for unit in ("CDMA", "CSC", "CMAC_A", "CMAC_B", "CACC", "SDP_RDMA", "SDP"):
        harness.select(unit, 0)
    harness.write("CDMA", "D_MISC_CFG", 1)
    harness.tensor("CDMA", "D_DAIN", 0x1000, (3, 6, 6), precision)
    harness.write("CDMA", "D_WEIGHT_ADDR_HIGH", 0)
    harness.write("CDMA", "D_WEIGHT_ADDR_LOW", 0x8000)
    harness.write("CDMA", "D_WEIGHT_BYTES", wbytes)
    harness.write("CDMA", "D_CONV_STRIDE_X", 1)
    harness.write("CDMA", "D_CONV_STRIDE_Y", 1)
    for side in ("LEFT", "RIGHT", "TOP", "BOTTOM"):
        harness.write("CDMA", f"D_ZERO_PADDING_{side}", 0)
    harness.write("CDMA", "D_BANK_DATA", 8)
    harness.write("CDMA", "D_BANK_WEIGHT", 8)
    harness.write("CSC", "D_MISC_CFG", 1)
    harness.write("CSC", "D_WEIGHT_SIZE_K", 4)
    harness.write("CSC", "D_WEIGHT_SIZE_C", 3)
    harness.write("CSC", "D_WEIGHT_SIZE_R", 3)
    harness.write("CSC", "D_WEIGHT_SIZE_S", 3)
    harness.write("CSC", "D_DATAOUT_WIDTH", 4)
    harness.write("CSC", "D_DATAOUT_HEIGHT", 4)
    harness.write("CMAC_A", "D_MISC_CFG", 1)
    harness.write("CMAC_B", "D_MISC_CFG", 1)
    harness.write("CACC", "D_MISC_CFG", 1)
    harness.write("CACC", "D_DATAOUT_WIDTH", 4)
    harness.write("CACC", "D_DATAOUT_HEIGHT", 4)
    harness.write("CACC", "D_DATAOUT_CHANNEL", 4)
    harness.write("SDP_RDMA", "D_FEATURE_MODE_CFG", 0)
    harness.write("SDP_RDMA", "D_BRDMA_CFG", 0)
    harness.write("SDP", "D_MISC_CFG", 1)
    harness.write("SDP", "D_OUT_PRECISION", 1)
    harness.write("SDP", "D_DATA_CUBE_WIDTH", 4)
    harness.write("SDP", "D_DATA_CUBE_HEIGHT", 4)
    harness.write("SDP", "D_DATA_CUBE_CHANNEL", 4)
    harness.tensor("SDP", "D_DST", 0x20000, (4, 4, 4), precision)
    harness.write("SDP", "D_ACT_CFG", 1)
    harness.write("SDP", "D_CVT_MULT", 1)
    harness.write("SDP", "D_CVT_SHIFT", 0)
    for unit in ("CACC", "CMAC_A", "CMAC_B", "CSC", "CDMA"):
        harness.enable(unit)
    harness.enable("SDP")
    harness.clock.fast_forward_to_next_event()

    packed = atom * 4 * 4 * precision.itemsize  # one padded surface
    out = unpack_feature(harness.memory.read(0x20000, packed), (4, 4, 4), atom, precision)
    from tests.nvdla.test_compute import scipy_conv_float

    expected = np.maximum(scipy_conv_float(x, w), 0)
    assert np.allclose(out.astype(np.float32), expected, rtol=5e-2, atol=5e-2)
    record = harness.engine.records[0]
    assert record.kind == "conv"
    assert record.timing.detail["macs"] == 4 * 3 * 3 * 3 * 4 * 4
