"""Functional kernels vs independent references (scipy / naive loops)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.signal import correlate2d

from repro.errors import ConfigurationError
from repro.nvdla.compute import (
    apply_batchnorm,
    apply_bias,
    apply_eltwise,
    apply_relu,
    conv2d_direct,
    convert_fp16,
    lrn,
    pool2d,
    requantize_int8,
)
from repro.nvdla.descriptors import EltwiseOp, PoolMode


def scipy_conv(x, w, stride, pad):
    """Independent reference via scipy cross-correlation."""
    pad_t, pad_b, pad_l, pad_r = pad
    xp = np.pad(x.astype(np.int64), ((0, 0), (pad_t, pad_b), (pad_l, pad_r)))
    k = w.shape[0]
    out_full = [
        sum(
            correlate2d(xp[c], w[kk, c].astype(np.int64), mode="valid")
            for c in range(x.shape[0])
        )
        for kk in range(k)
    ]
    sy, sx = stride
    return np.stack(out_full)[:, ::sy, ::sx]


@pytest.mark.parametrize("stride", [(1, 1), (2, 2), (1, 2)])
@pytest.mark.parametrize("pad", [(0, 0, 0, 0), (1, 1, 1, 1), (2, 0, 1, 0)])
def test_conv_matches_scipy(rng, stride, pad):
    x = rng.integers(-20, 20, size=(3, 9, 9), dtype=np.int8)
    w = rng.integers(-5, 5, size=(4, 3, 3, 3), dtype=np.int8)
    ours = conv2d_direct(x, w, stride=stride, pad=pad)
    ref = scipy_conv(x, w, stride, pad)
    assert np.array_equal(ours, ref)


def test_conv_1x1_is_channel_mix(rng):
    x = rng.integers(-10, 10, size=(5, 4, 4), dtype=np.int8)
    w = rng.integers(-3, 3, size=(2, 5, 1, 1), dtype=np.int8)
    ours = conv2d_direct(x, w, (1, 1), (0, 0, 0, 0))
    ref = np.einsum("kc,chw->khw", w[:, :, 0, 0].astype(np.int64), x.astype(np.int64))
    assert np.array_equal(ours, ref)


def test_conv_fp16_accumulates_in_float32(rng):
    x = rng.normal(size=(2, 5, 5)).astype(np.float16)
    w = rng.normal(size=(3, 2, 3, 3)).astype(np.float16)
    out = conv2d_direct(x, w, (1, 1), (0, 0, 0, 0))
    assert out.dtype == np.float32
    ref = scipy_conv_float(x, w)
    assert np.allclose(out, ref, rtol=1e-3)


def scipy_conv_float(x, w):
    k = w.shape[0]
    return np.stack(
        [
            sum(
                correlate2d(x[c].astype(np.float64), w[kk, c].astype(np.float64), mode="valid")
                for c in range(x.shape[0])
            )
            for kk in range(k)
        ]
    ).astype(np.float32)


def test_conv_channel_mismatch_rejected(rng):
    with pytest.raises(ConfigurationError):
        conv2d_direct(
            np.zeros((3, 5, 5), np.int8), np.zeros((2, 4, 3, 3), np.int8), (1, 1), (0, 0, 0, 0)
        )


def test_conv_empty_output_rejected():
    with pytest.raises(ConfigurationError):
        conv2d_direct(
            np.zeros((1, 2, 2), np.int8), np.zeros((1, 1, 5, 5), np.int8), (1, 1), (0, 0, 0, 0)
        )


def test_bias_and_batchnorm(rng):
    acc = rng.integers(-100, 100, size=(4, 3, 3)).astype(np.int64)
    bias = np.array([1, -2, 3, -4], dtype=np.int64)
    assert np.array_equal(apply_bias(acc, bias)[1], acc[1] - 2)
    mult = np.array([2.0, 0.5, 1.0, 3.0])
    scaled = apply_batchnorm(acc.astype(np.float64), mult)
    assert np.allclose(scaled[0], acc[0] * 2.0)
    with pytest.raises(ConfigurationError):
        apply_bias(acc, np.zeros(3))


@pytest.mark.parametrize(
    "op,fn",
    [
        (EltwiseOp.ADD, np.add),
        (EltwiseOp.MUL, np.multiply),
        (EltwiseOp.MAX, np.maximum),
    ],
)
def test_eltwise_ops(rng, op, fn):
    a = rng.integers(-50, 50, size=(2, 4, 4)).astype(np.int64)
    b = rng.integers(-50, 50, size=(2, 4, 4)).astype(np.int64)
    assert np.array_equal(apply_eltwise(a, op, b), fn(a, b))


def test_eltwise_none_passthrough(rng):
    a = rng.integers(-5, 5, size=(1, 2, 2)).astype(np.int64)
    assert apply_eltwise(a, EltwiseOp.NONE, None) is a


def test_relu(rng):
    acc = np.array([[-3, 0, 5]], dtype=np.int64).reshape(1, 1, 3)
    assert np.array_equal(apply_relu(acc, True).flatten(), [0, 0, 5])
    assert np.array_equal(apply_relu(acc, False), acc)


def test_requantize_rounds_and_saturates():
    acc = np.array([1000, -1000, 5, -5, 127, 129], dtype=np.int64).reshape(1, 2, 3)
    out = requantize_int8(acc, multiplier=1, shift=0)
    assert out.dtype == np.int8
    assert list(out.flatten()) == [127, -128, 5, -5, 127, 127]
    halves = requantize_int8(np.array([[[3]]], dtype=np.int64), multiplier=1, shift=1)
    assert halves.flatten()[0] == 2  # round-half-away at the shift


def test_requantize_multiplier_scales():
    acc = np.array([[[10]]], dtype=np.int64)
    assert requantize_int8(acc, multiplier=13, shift=4).flatten()[0] == round(130 / 16)


def test_convert_fp16():
    acc = np.array([[[1.5, -2.25]]], dtype=np.float32)
    out = convert_fp16(acc)
    assert out.dtype == np.float16
    assert np.allclose(out.astype(np.float32), acc)
    assert convert_fp16(acc, multiplier=1, shift=1).flatten()[0] == np.float16(0.75)


@pytest.mark.parametrize("mode", [PoolMode.MAX, PoolMode.AVG, PoolMode.MIN])
def test_pool_basic(rng, mode):
    x = rng.integers(-50, 50, size=(3, 6, 6), dtype=np.int8)
    out = pool2d(x, mode, kernel=(2, 2), stride=(2, 2), pad=(0, 0, 0, 0))
    assert out.shape == (3, 3, 3)
    window = x[:, :2, :2].astype(np.float64)
    if mode is PoolMode.MAX:
        expected = window.max(axis=(1, 2))
    elif mode is PoolMode.MIN:
        expected = window.min(axis=(1, 2))
    else:
        expected = np.rint(window.mean(axis=(1, 2)))
    assert np.array_equal(out[:, 0, 0].astype(np.float64), expected)


def test_max_pool_padding_does_not_win(rng):
    x = np.full((1, 2, 2), -100, dtype=np.int8)
    out = pool2d(x, PoolMode.MAX, kernel=(3, 3), stride=(1, 1), pad=(1, 1, 1, 1))
    assert out.max() == -100  # -inf padding never beats real values


def test_avg_pool_divides_by_full_window():
    x = np.full((1, 2, 2), 100, dtype=np.int8)
    out = pool2d(x, PoolMode.AVG, kernel=(2, 2), stride=(2, 2), pad=(1, 1, 1, 1))
    # corner window holds one real value + three zero pads -> 25
    assert out[0, 0, 0] == 25


def test_pool_overlapping_windows(rng):
    x = rng.integers(0, 100, size=(1, 5, 5), dtype=np.int8)
    out = pool2d(x, PoolMode.MAX, kernel=(3, 3), stride=(1, 1), pad=(0, 0, 0, 0))
    assert out.shape == (1, 3, 3)
    assert out[0, 1, 1] == x[0, 1:4, 1:4].max()


def test_lrn_matches_definition(rng):
    x = rng.normal(size=(8, 3, 3)).astype(np.float16)
    out = lrn(x, local_size=5, alpha=1e-2, beta=0.75, k=1.0)
    c = 3
    window = x.astype(np.float32)[max(0, c - 2) : c + 3]
    denom = (1.0 + (1e-2 / 5) * (window * window).sum(axis=0)) ** 0.75
    expected = x[c].astype(np.float32) / denom
    assert np.allclose(out[c].astype(np.float32), expected, rtol=2e-3, atol=2e-3)


def test_lrn_int8_stays_int8(rng):
    x = rng.integers(-100, 100, size=(4, 2, 2), dtype=np.int8)
    out = lrn(x, local_size=3, alpha=1e-4, beta=0.75, k=1.0)
    assert out.dtype == np.int8


@settings(max_examples=20)
@given(
    c=st.integers(1, 6),
    hw=st.integers(3, 8),
    k=st.integers(1, 6),
    ks=st.sampled_from([1, 3]),
)
def test_conv_property_vs_scipy(c, hw, k, ks):
    rng = np.random.default_rng(c * 100 + hw * 10 + k)
    x = rng.integers(-8, 8, size=(c, hw, hw), dtype=np.int8)
    w = rng.integers(-4, 4, size=(k, c, ks, ks), dtype=np.int8)
    ours = conv2d_direct(x, w, (1, 1), (0, 0, 0, 0))
    assert np.array_equal(ours, scipy_conv(x, w, (1, 1), (0, 0, 0, 0)))
