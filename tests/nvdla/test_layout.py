"""Feature/weight layout: round trips, padding, strides."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.nvdla.config import Precision
from repro.nvdla.layout import (
    ceil_div,
    feature_size_bytes,
    feature_strides,
    pack_feature,
    pack_weights,
    unpack_feature,
    unpack_weights,
    weight_size_bytes,
)


def test_feature_roundtrip_exact_atoms(rng):
    tensor = rng.integers(-128, 128, size=(16, 5, 7), dtype=np.int8)
    blob = pack_feature(tensor, 8, Precision.INT8)
    assert len(blob) == feature_size_bytes((16, 5, 7), 8, Precision.INT8)
    back = unpack_feature(blob, (16, 5, 7), 8, Precision.INT8)
    assert np.array_equal(tensor, back)


def test_feature_roundtrip_with_channel_padding(rng):
    tensor = rng.integers(-128, 128, size=(20, 4, 4), dtype=np.int8)
    blob = pack_feature(tensor, 8, Precision.INT8)
    assert len(blob) == 3 * 4 * 4 * 8  # 3 surfaces of 8 lanes
    back = unpack_feature(blob, (20, 4, 4), 8, Precision.INT8)
    assert np.array_equal(tensor, back)


def test_feature_padding_lanes_are_zero(rng):
    tensor = rng.integers(1, 127, size=(9, 2, 2), dtype=np.int8)
    blob = np.frombuffer(pack_feature(tensor, 8, Precision.INT8), dtype=np.int8)
    surfaces = blob.reshape(2, 2, 2, 8)
    assert np.count_nonzero(surfaces[1, :, :, 1:]) == 0  # lanes 9..15 padded


def test_feature_fp16_roundtrip(rng):
    tensor = rng.normal(size=(10, 3, 3)).astype(np.float16)
    blob = pack_feature(tensor, 16, Precision.FP16)
    back = unpack_feature(blob, (10, 3, 3), 16, Precision.FP16)
    assert np.array_equal(tensor, back)


def test_feature_layout_order_is_surface_h_w_lane():
    tensor = np.zeros((8, 2, 3), dtype=np.int8)
    tensor[2, 1, 2] = 77  # channel 2, row 1, col 2
    blob = pack_feature(tensor, 8, Precision.INT8)
    # offset = ((row * W) + col) * atom + lane
    assert blob[(1 * 3 + 2) * 8 + 2] == 77


def test_feature_strides_match_packing():
    line, surf = feature_strides((16, 5, 7), 8, Precision.INT8)
    assert line == 7 * 8
    assert surf == 5 * 7 * 8


def test_feature_wrong_rank_rejected():
    with pytest.raises(ConfigurationError):
        pack_feature(np.zeros((2, 2)), 8, Precision.INT8)


def test_unpack_short_blob_rejected():
    with pytest.raises(ConfigurationError):
        unpack_feature(b"\x00" * 10, (8, 2, 2), 8, Precision.INT8)


@settings(max_examples=30)
@given(
    c=st.integers(1, 40),
    h=st.integers(1, 6),
    w=st.integers(1, 6),
    atom=st.sampled_from([8, 16, 32]),
)
def test_feature_roundtrip_property(c, h, w, atom):
    rng = np.random.default_rng(c * 100 + h * 10 + w)
    tensor = rng.integers(-128, 128, size=(c, h, w), dtype=np.int8)
    back = unpack_feature(
        pack_feature(tensor, atom, Precision.INT8), (c, h, w), atom, Precision.INT8
    )
    assert np.array_equal(tensor, back)


def test_weight_roundtrip_padded(rng):
    weights = rng.integers(-128, 128, size=(20, 5, 3, 3), dtype=np.int8)
    blob = pack_weights(weights, 8, 8, Precision.INT8)
    assert len(blob) == weight_size_bytes((20, 5, 3, 3), 8, 8, Precision.INT8)
    back = unpack_weights(blob, (20, 5, 3, 3), 8, 8, Precision.INT8)
    assert np.array_equal(weights, back)


def test_weight_size_includes_both_paddings():
    # K 20 -> 3 kernel groups of 8, C 5 -> 1 channel group of 8.
    size = weight_size_bytes((20, 5, 3, 3), 8, 8, Precision.INT8)
    assert size == 3 * 8 * 1 * 8 * 9


def test_weight_fp16_roundtrip(rng):
    weights = rng.normal(size=(10, 3, 2, 2)).astype(np.float16)
    blob = pack_weights(weights, 64, 16, Precision.FP16)
    back = unpack_weights(blob, (10, 3, 2, 2), 64, 16, Precision.FP16)
    assert np.array_equal(weights, back)


@settings(max_examples=30)
@given(
    k=st.integers(1, 24),
    c=st.integers(1, 20),
    r=st.sampled_from([1, 3, 5]),
)
def test_weight_roundtrip_property(k, c, r):
    rng = np.random.default_rng(k * 1000 + c * 10 + r)
    weights = rng.integers(-128, 128, size=(k, c, r, r), dtype=np.int8)
    back = unpack_weights(
        pack_weights(weights, 8, 8, Precision.INT8), (k, c, r, r), 8, 8, Precision.INT8
    )
    assert np.array_equal(weights, back)


def test_ceil_div():
    assert ceil_div(7, 8) == 1
    assert ceil_div(8, 8) == 1
    assert ceil_div(9, 8) == 2
