"""Property tests for the analytic timing model.

The fast tier reports these estimates as SoC latency, so the model
must behave like physics, not like a lookup table: more work can never
cost fewer cycles (monotonicity in spatial and channel dims), a layer
with almost no work costs only the fixed programming/launch overhead,
and repeated evaluation of the same descriptor is exactly
deterministic.
"""

from __future__ import annotations

import pytest

from repro.mem import SparseMemory
from repro.nvdla import NV_SMALL
from repro.nvdla.cbuf import Cbuf
from repro.nvdla.config import Precision
from repro.nvdla.descriptors import (
    ConvDescriptor,
    PdpDescriptor,
    PoolMode,
    SdpDescriptor,
    SdpSource,
    TensorDesc,
)
from repro.nvdla.mcif import Mcif
from repro.nvdla.timing import (
    TimingParams,
    conv_op_timing,
    pdp_op_timing,
    sdp_op_timing,
)

from tests.conftest import DirectDbbPort

PARAMS = TimingParams()


def _mcif() -> Mcif:
    return Mcif(DirectDbbPort(SparseMemory(1 << 24)), dma_efficiency=0.75)


def _tensor(c: int, h: int, w: int, address: int = 0x10000) -> TensorDesc:
    return TensorDesc(address=address, width=w, height=h, channels=c, precision=Precision.INT8)


def _conv_timing(c: int, h: int, w: int, k: int, kernel: int = 3):
    out_h, out_w = h - kernel + 1, w - kernel + 1
    conv = ConvDescriptor(
        input=_tensor(c, h, w),
        weight_address=0x40000,
        kernel_k=k,
        kernel_c=c,
        kernel_r=kernel,
        kernel_s=kernel,
        stride_x=1,
        stride_y=1,
        pad_left=0,
        pad_top=0,
        pad_right=0,
        pad_bottom=0,
        precision=Precision.INT8,
        out_width=out_w,
        out_height=out_h,
    )
    sdp = SdpDescriptor(
        source=SdpSource.FLYING,
        output=_tensor(k, out_h, out_w, address=0x80000),
        out_precision=Precision.INT8,
    )
    return conv_op_timing(conv, sdp, NV_SMALL, Cbuf(NV_SMALL), _mcif(), PARAMS)


# ----------------------------------------------------------------------
# Monotonicity.
# ----------------------------------------------------------------------


def test_conv_timing_monotonic_in_spatial_dims():
    totals = [_conv_timing(8, size, size, 8).total for size in (8, 12, 16, 24, 32, 48)]
    assert totals == sorted(totals)
    assert totals[-1] > totals[0]  # strictly more work eventually costs more


def test_conv_timing_monotonic_in_channels():
    totals = [_conv_timing(c, 16, 16, 8).total for c in (8, 16, 32, 64, 128)]
    assert totals == sorted(totals)
    assert totals[-1] > totals[0]


def test_conv_timing_monotonic_in_output_channels():
    totals = [_conv_timing(8, 16, 16, k).total for k in (8, 16, 32, 64, 128)]
    assert totals == sorted(totals)
    assert totals[-1] > totals[0]


def test_pdp_timing_monotonic_in_spatial_dims():
    totals = []
    for size in (8, 16, 32, 64):
        desc = PdpDescriptor(
            input=_tensor(8, size, size),
            output=_tensor(8, size // 2, size // 2, address=0x80000),
            mode=PoolMode.MAX,
            kernel_w=2,
            kernel_h=2,
            stride_x=2,
            stride_y=2,
        )
        totals.append(pdp_op_timing(desc, NV_SMALL, _mcif(), PARAMS).total)
    assert totals == sorted(totals)
    assert totals[-1] > totals[0]


def test_sdp_timing_monotonic_in_channels():
    totals = []
    for c in (8, 16, 64, 256):
        desc = SdpDescriptor(
            source=SdpSource.MEMORY,
            input=_tensor(c, 8, 8),
            output=_tensor(c, 8, 8, address=0x80000),
            out_precision=Precision.INT8,
            relu=True,
        )
        totals.append(sdp_op_timing(desc, NV_SMALL, _mcif(), PARAMS).total)
    assert totals == sorted(totals)
    assert totals[-1] > totals[0]


# ----------------------------------------------------------------------
# Zero-work floor.
# ----------------------------------------------------------------------


def test_minimal_layer_costs_only_fixed_overhead():
    """A 1×1×1 layer's busy time is noise next to launch + drain."""
    desc = SdpDescriptor(
        source=SdpSource.MEMORY,
        input=_tensor(1, 1, 1),
        output=_tensor(1, 1, 1, address=0x80000),
        out_precision=Precision.INT8,
    )
    timing = sdp_op_timing(desc, NV_SMALL, _mcif(), PARAMS)
    assert timing.fixed == PARAMS.op_fixed_cycles + PARAMS.op_drain_cycles
    # The non-fixed part is a handful of DMA beats, not real work.
    assert timing.total - timing.fixed <= 16
    assert timing.total >= timing.fixed


def test_minimal_conv_costs_only_fixed_overhead():
    timing = _conv_timing(8, 1, 1, 8, kernel=1)
    assert timing.total - timing.fixed <= 64
    assert timing.detail["kernel_splits"] == 1


# ----------------------------------------------------------------------
# Determinism.
# ----------------------------------------------------------------------


def test_timing_estimates_are_deterministic():
    reference = _conv_timing(16, 24, 24, 32)
    for _ in range(3):
        again = _conv_timing(16, 24, 24, 32)
        assert again.total == reference.total
        assert again.as_dict() == reference.as_dict()


def test_whole_bundle_estimate_deterministic_across_executors(tiny_net):
    """Two independent executors price one bundle identically."""
    from repro.baremetal import generate_baremetal
    from repro.core import FastPathExecutor
    from repro.nvdla import NV_SMALL as CFG

    bundle = generate_baremetal(tiny_net, CFG)
    first = FastPathExecutor(CFG).estimate(bundle)
    second = FastPathExecutor(CFG).estimate(bundle)
    assert first.total_cycles == second.total_cycles
    assert [t.total for t in first.timings] == [t.total for t in second.timings]
