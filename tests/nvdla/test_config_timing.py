"""Hardware configs, CBUF model and the analytic timing model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TilingError
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.cbuf import Cbuf
from repro.nvdla.config import HardwareConfig, Precision, get_config
from repro.nvdla.descriptors import ConvDescriptor, SdpDescriptor, SdpSource, TensorDesc
from repro.nvdla.mcif import Mcif
from repro.nvdla.timing import TimingParams, conv_op_timing, pdp_op_timing, sdp_op_timing
from repro.nvdla.descriptors import PdpDescriptor, PoolMode

from repro.mem import SparseMemory
from tests.conftest import DirectDbbPort


# ----------------------------------------------------------------------
# Configurations.
# ----------------------------------------------------------------------


def test_published_config_parameters():
    assert NV_SMALL.mac_cells == 64
    assert NV_SMALL.cbuf_bytes == 32 * 1024
    assert NV_SMALL.precisions == (Precision.INT8,)
    assert NV_FULL.mac_cells == 2048
    assert NV_FULL.cbuf_bytes == 512 * 1024
    assert NV_FULL.supports(Precision.FP16)


def test_fp16_halves_kernel_atoms():
    assert NV_FULL.macs_per_cycle(Precision.INT8) == 2048
    assert NV_FULL.macs_per_cycle(Precision.FP16) == 1024
    ac, ak = NV_FULL.atoms(Precision.FP16)
    assert (ac, ak) == (64, 16)


def test_atom_channels_follow_memory_atom():
    assert NV_SMALL.atom_channels(Precision.INT8) == 8
    assert NV_FULL.atom_channels(Precision.INT8) == 32
    assert NV_FULL.atom_channels(Precision.FP16) == 16


def test_unsupported_precision_raises():
    with pytest.raises(ConfigurationError):
        NV_SMALL.macs_per_cycle(Precision.FP16)


def test_get_config_lookup():
    assert get_config("nv_small") is NV_SMALL
    with pytest.raises(ConfigurationError):
        get_config("nv_medium")


def test_custom_config_validation():
    with pytest.raises(ConfigurationError):
        HardwareConfig(name="bad", atomic_c=0, atomic_k=8, cbuf_banks=8, cbuf_bank_bytes=1024)
    with pytest.raises(ConfigurationError):
        HardwareConfig(name="bad", atomic_c=8, atomic_k=8, cbuf_banks=8, cbuf_bank_bytes=1024, precisions=())


def test_describe_mentions_key_parameters():
    text = NV_SMALL.describe()
    assert "64 INT8 MACs" in text and "32 KiB" in text


# ----------------------------------------------------------------------
# CBUF.
# ----------------------------------------------------------------------


def test_cbuf_default_split_covers_weights():
    cbuf = Cbuf(NV_SMALL)
    alloc = cbuf.default_split(weight_bytes=4 * 1024)
    assert alloc.weight_bytes >= 4 * 1024
    assert alloc.data_banks + alloc.weight_banks == NV_SMALL.cbuf_banks


def test_cbuf_weight_partition_capped_at_half():
    cbuf = Cbuf(NV_SMALL)
    alloc = cbuf.default_split(weight_bytes=10 * 1024 * 1024)
    assert alloc.weight_banks == NV_SMALL.cbuf_banks // 2


def test_cbuf_kernel_splits():
    cbuf = Cbuf(NV_SMALL)
    alloc = cbuf.default_split(weight_bytes=100 * 1024)
    splits = cbuf.kernel_splits(100 * 1024, alloc.weight_banks)
    assert splits == -(-100 * 1024 // alloc.weight_bytes)
    assert cbuf.kernel_splits(1024, alloc.weight_banks) == 1


def test_cbuf_over_allocation_rejected():
    cbuf = Cbuf(NV_SMALL)
    with pytest.raises(TilingError):
        cbuf.allocate(data_banks=30, weight_banks=10)
    with pytest.raises(TilingError):
        cbuf.allocate(data_banks=0, weight_banks=1)


# ----------------------------------------------------------------------
# Timing model.
# ----------------------------------------------------------------------


def _conv_desc(k=8, c=8, hw=8, ks=3, precision=Precision.INT8):
    input_desc = TensorDesc(address=0x1000, width=hw, height=hw, channels=c, precision=precision)
    out = hw - ks + 1
    return ConvDescriptor(
        input=input_desc,
        weight_address=0x8000,
        kernel_k=k,
        kernel_c=c,
        kernel_r=ks,
        kernel_s=ks,
        stride_x=1,
        stride_y=1,
        pad_left=0,
        pad_top=0,
        pad_right=0,
        pad_bottom=0,
        precision=precision,
        out_width=out,
        out_height=out,
    )


def _sdp_desc(k=8, hw=6, precision=Precision.INT8, source=SdpSource.FLYING):
    out = TensorDesc(address=0x20000, width=hw, height=hw, channels=k, precision=precision)
    input_desc = None
    if source is SdpSource.MEMORY:
        input_desc = TensorDesc(address=0x1000, width=hw, height=hw, channels=k, precision=precision)
    return SdpDescriptor(source=source, output=out, out_precision=precision, input=input_desc)


def _mcif():
    return Mcif(DirectDbbPort(SparseMemory(1 << 22)), dma_efficiency=1.0)


def test_conv_timing_has_all_components():
    timing = conv_op_timing(_conv_desc(), _sdp_desc(), NV_SMALL, Cbuf(NV_SMALL), _mcif(), TimingParams())
    assert timing.total > timing.fixed
    assert timing.weight_dma > 0
    assert timing.compute > 0
    assert timing.detail["kernel_splits"] == 1


def test_conv_timing_scales_with_kernel_count():
    small = conv_op_timing(_conv_desc(k=8), _sdp_desc(k=8), NV_SMALL, Cbuf(NV_SMALL), _mcif(), TimingParams())
    large = conv_op_timing(_conv_desc(k=64), _sdp_desc(k=64), NV_SMALL, Cbuf(NV_SMALL), _mcif(), TimingParams())
    assert large.total > small.total


def test_conv_timing_padding_inefficiency():
    """One input channel wastes 7/8 of the nv_small atoms: padded MACs
    must exceed true MACs by that factor."""
    desc = _conv_desc(c=1)
    timing = conv_op_timing(desc, _sdp_desc(), NV_SMALL, Cbuf(NV_SMALL), _mcif(), TimingParams())
    assert timing.detail["padded_macs"] == 8 * timing.detail["macs"]


def test_conv_timing_kernel_splits_multiply_input_traffic():
    params = TimingParams()
    mcif = _mcif()
    big = _conv_desc(k=512, c=64, hw=16, ks=3)  # 512*64*9 = 288 KiB > 16 KiB partition
    timing = conv_op_timing(big, _sdp_desc(k=512, hw=14), NV_SMALL, Cbuf(NV_SMALL), mcif, params)
    assert timing.detail["kernel_splits"] > 1


def test_fp16_compute_slower_than_int8_on_same_geometry():
    params = TimingParams()
    int8 = conv_op_timing(
        _conv_desc(k=64, c=64, precision=Precision.INT8),
        _sdp_desc(k=64, precision=Precision.INT8),
        NV_FULL, Cbuf(NV_FULL), _mcif(), params,
    )
    fp16 = conv_op_timing(
        _conv_desc(k=64, c=64, precision=Precision.FP16),
        _sdp_desc(k=64, precision=Precision.FP16),
        NV_FULL, Cbuf(NV_FULL), _mcif(), params,
    )
    assert fp16.detail["mac_cycles"] >= int8.detail["mac_cycles"]


def test_sdp_standalone_timing():
    timing = sdp_op_timing(
        _sdp_desc(source=SdpSource.MEMORY), NV_SMALL, _mcif(), TimingParams()
    )
    assert timing.input_dma > 0 and timing.output_dma > 0
    assert timing.total >= timing.input_dma + timing.output_dma


def test_pdp_timing_tracks_input_elements():
    def pool_desc(hw):
        return PdpDescriptor(
            input=TensorDesc(address=0, width=hw, height=hw, channels=8, precision=Precision.INT8),
            output=TensorDesc(address=0x4000, width=hw // 2, height=hw // 2, channels=8, precision=Precision.INT8),
            mode=PoolMode.MAX,
            kernel_w=2, kernel_h=2, stride_x=2, stride_y=2,
        )

    params = TimingParams()
    small = pdp_op_timing(pool_desc(8), NV_SMALL, _mcif(), params)
    large = pdp_op_timing(pool_desc(32), NV_SMALL, _mcif(), params)
    assert large.total > small.total


def test_mcif_efficiency_derates_streams():
    fast = Mcif(DirectDbbPort(SparseMemory(1 << 16)), dma_efficiency=1.0)
    slow = Mcif(DirectDbbPort(SparseMemory(1 << 16)), dma_efficiency=0.5)
    assert slow.stream_cycles(0, 4096) == 2 * fast.stream_cycles(0, 4096)
    with pytest.raises(ValueError):
        Mcif(DirectDbbPort(SparseMemory(16)), dma_efficiency=0.0)


def test_descriptor_validation_catches_geometry_errors():
    with pytest.raises(ConfigurationError):
        _conv_desc(ks=9)  # kernel larger than input
    with pytest.raises(ConfigurationError):
        TensorDesc(address=0, width=0, height=1, channels=1, precision=Precision.INT8)
    with pytest.raises(ConfigurationError):
        SdpDescriptor(
            source=SdpSource.MEMORY,
            output=TensorDesc(address=0, width=1, height=1, channels=1, precision=Precision.INT8),
            out_precision=Precision.INT8,
        )
