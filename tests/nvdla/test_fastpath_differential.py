"""Differential lockdown of the fast execution tier.

For every zoo model on nv_small the calibrated fast path must agree
with the cycle-accurate reference on both axes the serving layer
exposes:

- **function** — output tensors bit-identical to a full SoC run of
  the same bundle (same program, same preloads, same input);
- **timing** — estimated cycles within ±10 % of the measured
  cycle-accurate count.

Calibration is deliberately fitted on the two cheap-to-build models
only; every 224×224-class model is validated out-of-sample, so the
suite catches an overhead model that merely memorises its calibration
runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baremetal import generate_baremetal
from repro.core import FastPathExecutor, Soc, calibrate
from repro.nn.zoo import ZOO
from repro.nvdla import NV_SMALL
from repro.serve.cache import BundleCache
from repro.serve.request import make_input_for

ERROR_BAND = 0.10
CALIBRATION_MODELS = ("lenet5", "resnet18")

ZOO_CASES = [
    pytest.param("lenet5", id="lenet5"),
    pytest.param("resnet18", id="resnet18"),
    pytest.param("mobilenet", marks=pytest.mark.slow, id="mobilenet"),
    pytest.param("googlenet", marks=pytest.mark.slow, id="googlenet"),
    pytest.param("alexnet", marks=pytest.mark.slow, id="alexnet"),
    pytest.param("resnet50", marks=pytest.mark.slow, id="resnet50"),
]


@pytest.fixture(scope="module")
def cache():
    """Holds the small calibration bundles; big models build per test."""
    return BundleCache()


@pytest.fixture(scope="module")
def table(cache):
    return calibrate(CALIBRATION_MODELS, NV_SMALL, cache=cache)


def _bundle(model: str, cache: BundleCache):
    if model in CALIBRATION_MODELS:
        return cache.bundle_for(model, "nv_small")
    # 224×224-class bundles are built locally so module memory does not
    # accumulate all six weight blobs + traces at once.
    return generate_baremetal(ZOO[model](), NV_SMALL)


@pytest.mark.parametrize("model", ZOO_CASES)
def test_fast_path_matches_cycle_accurate(model, cache, table):
    bundle = _bundle(model, cache)
    soc = Soc(NV_SMALL)
    soc.load_bundle(bundle)
    reference = soc.run_inference(bundle)
    assert reference.ok, f"cycle-accurate {model} run failed"

    executor = FastPathExecutor(NV_SMALL, calibration=table)
    estimate = executor.estimate(bundle)
    if not table.has(model, "nv_small", "int8"):
        # Out-of-sample pair: admit it with the *pre-computed* estimate
        # (admission records the comparison, it cannot influence it).
        table.admit(model, "nv_small", "int8", reference.cycles, estimate.total_cycles)
    result = executor.run(bundle)
    assert result.ok

    # Function: bit-identical output tensors.
    assert reference.output is not None and result.output is not None
    assert np.array_equal(reference.output, result.output), (
        f"{model}: fast-path output diverges from the cycle-accurate SoC"
    )

    # Timing: the estimate the fast tier *reports* is the gated one.
    assert result.cycles == estimate.total_cycles
    error = (result.cycles - reference.cycles) / reference.cycles
    assert abs(error) <= ERROR_BAND, (
        f"{model}: estimated {result.cycles:,} vs measured {reference.cycles:,} "
        f"cycles ({error:+.2%}, band ±{ERROR_BAND:.0%})"
    )


def test_fresh_inputs_stay_bit_identical(cache, table):
    """Per-request input replacement (the serving path) must agree too."""
    rng = np.random.default_rng(20260729)
    from repro.serve.workers import SocWorker
    from repro.serve.request import DeploymentSpec

    bundle = cache.bundle_for("lenet5", "nv_small")
    worker = SocWorker(0, DeploymentSpec("lenet5"))
    executor = FastPathExecutor(NV_SMALL, calibration=table)
    for _ in range(3):
        image = make_input_for(ZOO["lenet5"](), rng)
        reference = worker.run(bundle, input_image=image)
        fast = executor.run(bundle, input_image=image)
        assert np.array_equal(reference.output, fast.output)


def test_fp16_nv_full_differential(cache):
    """The wide FP16 build agrees too (64-bit memory path, Table III)."""
    from repro.nvdla import NV_FULL
    from repro.nvdla.config import Precision

    table = calibrate(
        ("lenet5",), NV_FULL, precision=Precision.FP16, cache=cache,
        memory_bus_width_bits=64,
    )
    bundle = cache.bundle_for("resnet18", NV_FULL, precision=Precision.FP16)
    soc = Soc(NV_FULL, memory_bus_width_bits=64)
    soc.load_bundle(bundle)
    reference = soc.run_inference(bundle)
    executor = FastPathExecutor(NV_FULL, calibration=table, memory_bus_width_bits=64)
    estimate = executor.estimate(bundle)
    table.admit(
        "resnet18", "nv_full", "fp16", reference.cycles, estimate.total_cycles,
        memory_bus_width_bits=64,
    )
    result = executor.run(bundle)
    assert np.array_equal(reference.output, result.output)
    assert abs(result.cycles - reference.cycles) / reference.cycles <= ERROR_BAND


def test_calibration_entries_within_band(table):
    """The fitted table itself validates every calibrated pair."""
    for model in CALIBRATION_MODELS:
        entry = table.entry(model, "nv_small", "int8")
        assert entry.within(ERROR_BAND), (
            f"{model}: calibration error {entry.error:+.2%} outside ±{ERROR_BAND:.0%}"
        )
