"""Register blocks: ping-pong shadows, enable protocol, GLB interrupts."""

from __future__ import annotations

import pytest

from repro.errors import RegisterError
from repro.nvdla.registers import (
    D_OP_ENABLE,
    FIRST_DESCRIPTOR_OFFSET,
    GroupStatus,
    RegisterBlock,
    RegisterSpec,
    S_POINTER,
    S_STATUS,
)
from repro.nvdla.units.glb import Glb, HW_VERSION, HW_VERSION_VALUE, INTR_MASK, INTR_SET, INTR_STATUS, interrupt_bit


def _block() -> RegisterBlock:
    specs = [
        RegisterSpec("D_A", FIRST_DESCRIPTOR_OFFSET),
        RegisterSpec("D_B", FIRST_DESCRIPTOR_OFFSET + 4),
    ]
    return RegisterBlock("TEST", specs)


def test_writes_land_in_producer_group():
    block = _block()
    block.csb_write(FIRST_DESCRIPTOR_OFFSET, 11)
    block.csb_write(S_POINTER, 1)
    block.csb_write(FIRST_DESCRIPTOR_OFFSET, 22)
    assert block.value("D_A", 0) == 11
    assert block.value("D_A", 1) == 22


def test_read_returns_producer_view():
    block = _block()
    block.csb_write(FIRST_DESCRIPTOR_OFFSET, 5)
    block.csb_write(S_POINTER, 1)
    assert block.csb_read(FIRST_DESCRIPTOR_OFFSET) == 0
    block.csb_write(S_POINTER, 0)
    assert block.csb_read(FIRST_DESCRIPTOR_OFFSET) == 5


def test_enable_launch_complete_lifecycle():
    block = _block()
    block.csb_write(D_OP_ENABLE, 1)
    assert block.status[0] is GroupStatus.PENDING
    assert block.pending_group() == 0
    block.launch(0)
    assert block.status[0] is GroupStatus.RUNNING
    assert block.busy()
    block.complete(0)
    assert block.status[0] is GroupStatus.IDLE
    assert block.consumer == 1
    assert not block.busy()


def test_double_enable_rejected():
    block = _block()
    block.csb_write(D_OP_ENABLE, 1)
    with pytest.raises(RegisterError):
        block.enable_group(0)


def test_launch_without_enable_rejected():
    block = _block()
    with pytest.raises(RegisterError):
        block.launch(0)


def test_pingpong_both_groups_pending():
    block = _block()
    block.csb_write(D_OP_ENABLE, 1)  # group 0
    block.csb_write(S_POINTER, 1)
    block.csb_write(D_OP_ENABLE, 1)  # group 1
    block.launch(0)
    block.complete(0)
    assert block.pending_group() == 1


def test_status_word_encodes_both_groups():
    block = _block()
    block.csb_write(D_OP_ENABLE, 1)
    block.launch(0)
    status = block.csb_read(S_STATUS)
    assert status & 0xFFFF == GroupStatus.RUNNING
    assert (status >> 16) == GroupStatus.IDLE


def test_s_status_read_only():
    block = _block()
    with pytest.raises(RegisterError):
        block.csb_write(S_STATUS, 1)


def test_unknown_offset_rejected():
    block = _block()
    with pytest.raises(RegisterError):
        block.csb_read(0x500)
    with pytest.raises(RegisterError):
        block.csb_write(0x500, 1)


def test_value64_combines_pairs():
    specs = [
        RegisterSpec("HI", FIRST_DESCRIPTOR_OFFSET),
        RegisterSpec("LO", FIRST_DESCRIPTOR_OFFSET + 4),
    ]
    block = RegisterBlock("T", specs)
    block.csb_write(FIRST_DESCRIPTOR_OFFSET, 0x1)
    block.csb_write(FIRST_DESCRIPTOR_OFFSET + 4, 0x2345)
    assert block.value64("HI", "LO", 0) == 0x100002345


def test_duplicate_register_specs_rejected():
    with pytest.raises(RegisterError):
        RegisterBlock(
            "T",
            [
                RegisterSpec("A", FIRST_DESCRIPTOR_OFFSET),
                RegisterSpec("B", FIRST_DESCRIPTOR_OFFSET),
            ],
        )
    with pytest.raises(RegisterError):
        RegisterBlock(
            "T",
            [
                RegisterSpec("A", FIRST_DESCRIPTOR_OFFSET),
                RegisterSpec("A", FIRST_DESCRIPTOR_OFFSET + 4),
            ],
        )


def test_reset_restores_defaults():
    block = _block()
    block.csb_write(FIRST_DESCRIPTOR_OFFSET, 9)
    block.csb_write(D_OP_ENABLE, 1)
    block.reset()
    assert block.csb_read(FIRST_DESCRIPTOR_OFFSET) == 0
    assert block.pending_group() is None


# ----------------------------------------------------------------------
# GLB.
# ----------------------------------------------------------------------


def test_glb_version_register():
    glb = Glb()
    assert glb.csb_read(HW_VERSION) == HW_VERSION_VALUE
    with pytest.raises(RegisterError):
        glb.csb_write(HW_VERSION, 0)


def test_glb_interrupt_set_and_clear():
    glb = Glb()
    glb.raise_interrupt("SDP", 0)
    bit = 1 << interrupt_bit("SDP", 0)
    assert glb.csb_read(INTR_STATUS) == bit
    glb.csb_write(INTR_STATUS, bit)  # W1C
    assert glb.csb_read(INTR_STATUS) == 0


def test_glb_w1c_only_clears_written_bits():
    glb = Glb()
    glb.raise_interrupt("SDP", 0)
    glb.raise_interrupt("PDP", 1)
    glb.csb_write(INTR_STATUS, 1 << interrupt_bit("SDP", 0))
    assert glb.csb_read(INTR_STATUS) == 1 << interrupt_bit("PDP", 1)


def test_glb_mask_suppresses_irq_line():
    glb = Glb()
    glb.csb_write(INTR_MASK, 1 << interrupt_bit("SDP", 0))
    glb.raise_interrupt("SDP", 0)
    assert glb.pending() == 0  # masked
    glb.raise_interrupt("PDP", 0)
    assert glb.pending() != 0


def test_glb_software_set():
    glb = Glb()
    glb.csb_write(INTR_SET, 0b100)
    assert glb.csb_read(INTR_STATUS) == 0b100


def test_interrupt_bits_unique_per_unit_group():
    bits = {
        interrupt_bit(unit, group)
        for unit in ("CACC", "SDP", "CDP", "RUBIK", "PDP", "BDMA")
        for group in (0, 1)
    }
    assert len(bits) == 12


def test_unknown_interrupt_unit_rejected():
    with pytest.raises(RegisterError):
        interrupt_bit("CDMA", 0)
