"""Linux-driver baseline: calibration against the published ESP rows."""

from __future__ import annotations

import pytest

from repro.baseline import EspPlatform, LinuxDriverModel, LinuxOverheadParams, run_esp_baseline
from repro.baseline.esp_platform import ESP_PUBLISHED_MS
from repro.compiler import compile_network
from repro.errors import ExperimentError
from repro.nn.zoo import lenet5
from repro.nvdla import NV_FULL, NV_SMALL


@pytest.fixture(scope="module")
def lenet_loadable():
    return compile_network(lenet5(), NV_SMALL)


def test_esp_lenet_matches_published_number(lenet_loadable):
    result = EspPlatform().run(lenet_loadable)
    assert result.milliseconds == pytest.approx(ESP_PUBLISHED_MS["lenet5"], rel=0.25)


def test_small_model_is_software_dominated(lenet_loadable):
    result = EspPlatform().run(lenet_loadable)
    assert result.software_fraction > 0.9  # init dwarfs the accelerator


def test_breakdown_sums_to_total(lenet_loadable):
    result = EspPlatform().run(lenet_loadable)
    parts = (
        result.init_cycles
        + result.submit_cycles
        + result.irq_cycles
        + result.copy_cycles
        + result.hw_cycles
    )
    assert parts == result.cycles


def test_overheads_scale_with_op_count(lenet_loadable, residual_net):
    residual_loadable = compile_network(residual_net, NV_SMALL)
    a = EspPlatform().run(lenet_loadable)
    b = EspPlatform().run(residual_loadable)
    assert a.ops == lenet_loadable.hw_op_count()
    assert b.submit_cycles != a.submit_cycles


def test_zero_overhead_params_leave_hw_time(lenet_loadable):
    params = LinuxOverheadParams(
        runtime_init_cycles=0, submit_cycles_per_op=0, irq_path_cycles_per_op=0
    )
    model = LinuxDriverModel(NV_SMALL, frequency_hz=50e6, params=params)
    result = model.run(lenet_loadable)
    assert result.cycles == result.hw_cycles + result.copy_cycles


def test_frequency_scales_wall_clock(lenet_loadable):
    slow = LinuxDriverModel(NV_SMALL, frequency_hz=50e6).run(lenet_loadable)
    fast = LinuxDriverModel(NV_SMALL, frequency_hz=100e6).run(lenet_loadable)
    assert fast.seconds < slow.seconds
    assert fast.cycles == slow.cycles


def test_config_mismatch_rejected(lenet_loadable):
    with pytest.raises(ExperimentError):
        LinuxDriverModel(NV_FULL).run(lenet_loadable)


def test_run_esp_baseline_convenience():
    result = run_esp_baseline(lenet5())
    assert result.milliseconds > 100  # dominated by the 244 ms init


def test_bare_metal_speedup_shape(lenet_loadable):
    """The paper's headline: bare-metal LeNet-5 is ~55x faster than the
    ESP/Linux number (4.8 ms vs 263 ms)."""
    esp_ms = EspPlatform().run(lenet_loadable).milliseconds
    from repro.baremetal import generate_baremetal
    from repro.core import Soc
    from repro.nn.zoo import lenet5 as build

    bundle = generate_baremetal(build(), NV_SMALL, fidelity="timing")
    soc = Soc(NV_SMALL, fidelity="timing")
    soc.load_bundle(bundle)
    ours_ms = soc.run_inference(bundle).milliseconds
    speedup = esp_ms / ours_ms
    assert 20 <= speedup <= 120  # paper: ~55x
