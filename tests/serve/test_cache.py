"""BundleCache: hit/miss semantics, keys, LRU bounds."""

from __future__ import annotations

import pytest

from repro.baremetal.codegen import CodegenOptions
from repro.baremetal.pipeline import bundle_cache_key, options_fingerprint
from repro.compiler import CompileOptions
from repro.errors import ReproError
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision
from repro.serve import BundleCache


def test_same_key_returns_identical_bundle_without_recompiling():
    cache = BundleCache()
    first = cache.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    again = cache.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    assert again is first  # the very same object, no rebuild
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.hit_rate == 0.5


def test_different_precision_misses():
    cache = BundleCache()
    int8 = cache.bundle_for("lenet5", NV_FULL, Precision.INT8, fidelity="timing")
    fp16 = cache.bundle_for("lenet5", NV_FULL, Precision.FP16, fidelity="timing")
    assert cache.stats.misses == 2
    assert cache.stats.hits == 0
    assert int8 is not fp16
    assert int8.precision is Precision.INT8
    assert fp16.precision is Precision.FP16


def test_different_fidelity_and_config_miss():
    cache = BundleCache()
    cache.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    cache.bundle_for("lenet5", NV_SMALL, fidelity="functional")
    cache.bundle_for("lenet5", NV_FULL, fidelity="timing")
    assert cache.stats.misses == 3


def test_codegen_options_are_part_of_the_key():
    cache = BundleCache()
    default = cache.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    tweaked = cache.bundle_for(
        "lenet5",
        NV_SMALL,
        fidelity="timing",
        codegen_options=CodegenOptions(poll_limit=12345),
    )
    assert cache.stats.misses == 2
    assert default is not tweaked
    # But an explicitly default-constructed options object is the same
    # deployment as None.
    same = cache.bundle_for(
        "lenet5", NV_SMALL, fidelity="timing", codegen_options=CodegenOptions()
    )
    assert same is default
    assert cache.stats.hits == 1


def test_key_treats_default_compile_options_as_none():
    for precision in (Precision.INT8, Precision.FP16):
        explicit = bundle_cache_key(
            "lenet5",
            NV_FULL,
            precision,
            compile_options=CompileOptions(precision=precision),
        )
        implied = bundle_cache_key("lenet5", NV_FULL, precision)
        assert explicit == implied


def test_key_separates_seeds_and_models():
    base = bundle_cache_key("lenet5", NV_SMALL, Precision.INT8)
    assert bundle_cache_key("resnet18", NV_SMALL, Precision.INT8) != base
    assert bundle_cache_key("lenet5", NV_SMALL, Precision.INT8, seed=1) != base


def test_options_fingerprint_stability():
    assert options_fingerprint(None) == "defaults"
    # A default-constructed options object IS the defaults.
    assert options_fingerprint(CodegenOptions()) == "defaults"
    a = options_fingerprint(CodegenOptions(poll_limit=7))
    b = options_fingerprint(CodegenOptions(poll_limit=7))
    c = options_fingerprint(CodegenOptions(poll_limit=8))
    assert a == b
    assert a != c
    assert a != "defaults"


def test_independent_builds_are_exact_replicas():
    """Two caches building the same deployment key independently
    produce byte-identical artefacts (the determinism the cache's
    correctness rests on), witnessed by artifact_digest."""
    digests = [
        BundleCache().bundle_for("lenet5", NV_SMALL, fidelity="timing").artifact_digest()
        for _ in range(2)
    ]
    assert digests[0] == digests[1]
    # In functional fidelity the seed picks the baked input.bin, so a
    # different seed must change the artefacts.  (Timing-mode bundles
    # carry no DBB payloads and are input-independent by design.)
    functional = [
        BundleCache().bundle_for("lenet5", NV_SMALL, seed=seed).artifact_digest()
        for seed in (2024, 1)
    ]
    assert functional[0] != functional[1]


def test_lru_eviction_bound():
    cache = BundleCache(max_entries=1)
    first = cache.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    cache.bundle_for("lenet5", NV_FULL, fidelity="timing")
    assert len(cache) == 1
    assert cache.stats.evictions == 1
    # The evicted deployment rebuilds (a fresh object, not the old one).
    rebuilt = cache.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    assert rebuilt is not first
    assert cache.stats.misses == 3


def test_unknown_model_rejected():
    cache = BundleCache()
    with pytest.raises(ReproError):
        cache.bundle_for("nonexistent", NV_SMALL)
    with pytest.raises(ReproError):
        BundleCache(max_entries=0)


# ----------------------------------------------------------------------
# Store-backed tier: memory → disk → compile.
# ----------------------------------------------------------------------


def test_store_backed_miss_path(tmp_path):
    from repro.store import BundleStore

    store = BundleStore(tmp_path / "store")
    first = BundleCache(store=store)
    built = first.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    # The compile was published as a side effect…
    assert first.stats.compiles == 1
    assert first.stats.store_hits == 0
    assert len(store) == 1
    # …so a brand-new cache over the same store loads instead of building.
    second = BundleCache(store=store)
    fetched = second.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    assert second.stats.store_hits == 1
    assert second.stats.compiles == 0
    assert second.stats.misses == 1  # still a *memory* miss
    assert fetched.artifact_digest() == built.artifact_digest()
    # Once resident, memory wins — the store is not consulted again.
    store_reads = store.stats.hits
    second.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    assert second.stats.hits == 1
    assert store.stats.hits == store_reads


def test_stats_invariant_and_to_dict(tmp_path):
    from repro.store import BundleStore

    store = BundleStore(tmp_path / "store")
    cache = BundleCache(store=store)
    cache.bundle_for("lenet5", NV_SMALL, fidelity="timing")  # compile
    cache.bundle_for("lenet5", NV_SMALL, fidelity="timing")  # memory hit
    BundleCache(store=store).bundle_for("lenet5", NV_SMALL, fidelity="timing")
    stats = cache.stats
    # Every miss is resolved by exactly one of {store, compiler}.
    assert stats.misses == stats.store_hits + stats.compiles
    payload = stats.to_dict()
    for field in (
        "hits",
        "misses",
        "store_hits",
        "store_errors",
        "compiles",
        "evictions",
        "hit_rate",
        "build_seconds",
    ):
        assert field in payload
    assert payload["compiles"] == 1
    assert payload["store_errors"] == 0
    assert stats.build_seconds > 0.0


def test_storeless_cache_never_counts_store_traffic():
    cache = BundleCache()
    cache.bundle_for("lenet5", NV_SMALL, fidelity="timing")
    assert cache.stats.store_hits == 0
    assert cache.stats.store_errors == 0
    assert cache.stats.compiles == 1
    assert cache.stats.misses == 1
