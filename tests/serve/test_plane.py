"""ServingPlane: the N-process plane must be indistinguishable — bit
for bit — from the single-process service, while actually streaming
arrivals through forming batches on worker processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.serve import (
    BundleCache,
    DeploymentSpec,
    InferenceRequest,
    InferenceService,
    ServingPlane,
)
from repro.store import BundleStore

LENET = DeploymentSpec("lenet5")
RESNET = DeploymentSpec("resnet18")


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    """One store-backed cache for the whole module: compiles happen
    once; every plane ships bundles through this store."""
    cache = BundleCache(store=BundleStore(tmp_path_factory.mktemp("plane-store")))
    cache.bundle_for("lenet5", "nv_small")
    return cache


def test_two_process_plane_bit_identical_to_service(cache):
    """The gate: same workload, synthesised inputs, mixed models —
    2 worker processes reproduce the single-process service exactly."""
    workload = [LENET, RESNET, LENET, RESNET, LENET, LENET]

    service = InferenceService(cache=cache, input_seed=7)
    for deployment in workload:
        service.request(deployment)
    single = sorted(service.run_pending(), key=lambda r: r.request_id)

    with ServingPlane(processes=2, input_seed=7, cache=cache) as plane:
        multi = plane.serve([plane.request(d) for d in workload])

    assert [r.request_id for r in multi] == list(range(len(workload)))
    for s, m in zip(single, multi):
        assert m.ok
        assert np.array_equal(s.output, m.output)
        assert s.cycles == m.cycles and s.sim_seconds == m.sim_seconds
    # Both worker processes were part of the run's accounting.
    assert set(plane.metrics.per_process) == {0, 1}
    assert sum(s["runs"] for s in plane.metrics.per_process.values()) == len(workload)


def test_explicit_input_images_served_unchanged(cache):
    rng = np.random.default_rng(3)
    bundle = cache.bundle_for("lenet5", "nv_small")
    shape = bundle.loadable.input_tensor.shape
    images = [rng.uniform(-1, 1, size=shape).astype(np.float32) for _ in range(3)]

    service = InferenceService(cache=cache, input_seed=7)
    for image in images:
        service.request(LENET, image)
    single = sorted(service.run_pending(), key=lambda r: r.request_id)

    with ServingPlane(processes=1, input_seed=7, cache=cache) as plane:
        multi = plane.serve([plane.request(LENET, image) for image in images])
    for s, m in zip(single, multi):
        assert np.array_equal(s.output, m.output) and s.cycles == m.cycles


def test_streaming_arrivals_join_the_forming_batch(cache):
    """Paced arrivals land inside the admission window and are admitted
    into the open batch instead of each forming its own."""
    with ServingPlane(
        processes=1, input_seed=7, cache=cache, admission_window_s=0.75
    ) as plane:
        requests = [plane.request(LENET) for _ in range(6)]
        responses = plane.serve(requests, gaps=[0.0] + [0.02] * 5)
    assert all(r.ok for r in responses)
    # The first arrival opened a batch; the admission window held it
    # open long enough for the rest of the stream to join.
    assert plane.scheduler.admitted_into_open >= 4
    assert plane.metrics.batches <= 2
    batch_ids = {r.batch_id for r in responses}
    assert len(batch_ids) == plane.metrics.batches


def test_worker_crash_between_serves_is_transparent(cache):
    with ServingPlane(processes=1, input_seed=7, cache=cache) as plane:
        first = plane.serve([plane.request(LENET)])
        plane.pool.handles[0].process.kill()
        plane.pool.handles[0].process.join(timeout=10)
        second = plane.serve([plane.request(LENET)])
        assert first[0].ok and second[0].ok
        assert plane.metrics.process_restarts == 1


def test_unknown_model_fails_fast_at_publish(cache):
    with ServingPlane(processes=1, input_seed=7, cache=cache) as plane:
        request = plane.request(DeploymentSpec("not-a-model"))
        with pytest.raises(ReproError, match="unknown zoo model"):
            plane.serve([request])


def test_gap_count_must_match_workload(cache):
    with ServingPlane(processes=1, cache=cache) as plane:
        with pytest.raises(ReproError, match="gaps"):
            plane.serve([plane.request(LENET)], gaps=[0.0, 0.0])
