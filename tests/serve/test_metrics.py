"""Service metrics: percentile properties, JSON export, rendering.

The `percentile()` helper implements the nearest-rank definition
(`rank = ceil(n·q/100)`, clamped to at least 1).  The property tests
check it against an independent reference implementation over random
samples, plus the edges the definition pins down: q=0 → minimum,
q=100 → maximum, single-sample series, duplicated values.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.serve import DeploymentSpec, InferenceService, percentile
from repro.serve.metrics import LatencySummary, ServiceMetrics


def reference_percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile, written independently of the helper."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(len(ordered) * q / 100.0))
    return ordered[rank - 1]


# ----------------------------------------------------------------------
# Property tests.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("size", [1, 2, 3, 7, 50, 101, 500])
def test_matches_reference_on_random_samples(seed, size):
    rng = np.random.default_rng(seed)
    samples = rng.uniform(-1e3, 1e3, size=size).tolist()
    for q in [0, 1, 25, 50, 75, 90, 95, 99, 99.9, 100]:
        assert percentile(samples, q) == reference_percentile(samples, q)


@pytest.mark.parametrize("seed", range(4))
def test_result_is_always_a_sample(seed):
    rng = np.random.default_rng(seed)
    samples = rng.normal(size=37).tolist()
    for q in rng.uniform(0, 100, size=25):
        assert percentile(samples, float(q)) in samples


@pytest.mark.parametrize("seed", range(4))
def test_monotone_in_q(seed):
    rng = np.random.default_rng(seed)
    samples = rng.exponential(size=64).tolist()
    values = [percentile(samples, q) for q in np.linspace(0, 100, 41)]
    assert values == sorted(values)


def test_edges():
    assert percentile([], 50) == 0.0
    assert percentile([3.5], 0) == 3.5
    assert percentile([3.5], 100) == 3.5
    samples = [5.0, 1.0, 3.0]
    assert percentile(samples, 0) == 1.0  # q=0 clamps to the minimum
    assert percentile(samples, 100) == 5.0
    # Duplicates are fine: nearest rank just indexes the sorted list.
    assert percentile([2.0, 2.0, 2.0], 99) == 2.0
    # The helper must not mutate its input.
    unsorted = [9.0, 1.0, 4.0]
    percentile(unsorted, 50)
    assert unsorted == [9.0, 1.0, 4.0]


def test_out_of_range_q_raises():
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 100.1)


def test_integer_rank_boundaries():
    """Exactly on-rank quantiles of 1..100: p50 = 50, p99 = 99."""
    samples = [float(v) for v in range(1, 101)]
    assert percentile(samples, 50) == 50.0
    assert percentile(samples, 99) == 99.0
    assert percentile(samples, 1) == 1.0


# ----------------------------------------------------------------------
# JSON export (the satellite the cluster aggregator builds on).
# ----------------------------------------------------------------------


def test_latency_summary_to_dict():
    summary = LatencySummary.of([0.2, 0.1, 0.4])
    payload = summary.to_dict()
    assert payload == {
        "count": 3,
        "mean": pytest.approx(0.7 / 3),
        "p50": 0.2,
        "p99": 0.4,
        "max": 0.4,
    }
    assert LatencySummary.of([]).to_dict()["count"] == 0


def test_service_metrics_to_dict_round_trip():
    import json

    metrics = ServiceMetrics()
    metrics.record(0.010, cycles=1000, ok=True, deployment="lenet5/nv_small")
    metrics.record(0.030, cycles=3000, ok=False, deployment="lenet5/nv_small")
    metrics.bundle_hits = 1
    metrics.bundle_misses = 1
    payload = metrics.to_dict()
    json.dumps(payload)  # JSON-clean end to end
    assert payload["requests"] == 2
    assert payload["failures"] == 1
    assert payload["cache_hit_rate"] == pytest.approx(0.5)
    assert payload["wall"]["p99"] == pytest.approx(0.030)
    slice_ = payload["per_deployment"]["lenet5/nv_small"]
    assert slice_["requests"] == 2
    assert slice_["wall"]["max"] == pytest.approx(0.030)
    assert slice_["cycles"]["p50"] == pytest.approx(1000.0)


def test_render_per_deployment_includes_wall_p99():
    metrics = ServiceMetrics()
    for value in (0.01, 0.02, 0.90):
        metrics.record(value, cycles=500, ok=True, deployment="lenet5/nv_small")
    lines = metrics.render().splitlines()
    slice_lines = [line for line in lines if line.startswith("  lenet5")]
    assert len(slice_lines) == 1
    # Fleet-style formatting: wall p50/p99/max and cycles p50/p99.
    assert "p99 900.0 ms" in slice_lines[0]
    assert "max 900.0 ms" in slice_lines[0]
    assert "cycles p50 500" in slice_lines[0]


def test_metrics_to_dict_splits_miss_resolution():
    metrics = ServiceMetrics()
    metrics.bundle_hits = 3
    metrics.bundle_misses = 2
    metrics.bundle_store_hits = 1
    metrics.bundle_compiles = 1
    payload = metrics.to_dict()
    assert payload["bundle_store_hits"] == 1
    assert payload["bundle_compiles"] == 1
    assert "1 from store, 1 compiled" in metrics.render()


def test_service_classifies_store_hits_vs_compiles(tmp_path):
    from repro.serve import BundleCache
    from repro.store import BundleStore

    store = BundleStore(tmp_path / "store")
    spec = DeploymentSpec("lenet5", fidelity="timing")

    compiler = InferenceService(cache=BundleCache(store=store))
    compiler.request(spec)
    compiler.run_pending()
    assert compiler.metrics.bundle_compiles == 1
    assert compiler.metrics.bundle_store_hits == 0

    warmed = InferenceService(cache=BundleCache(store=store))
    warmed.request(spec)
    warmed.run_pending()
    assert warmed.metrics.bundle_store_hits == 1
    assert warmed.metrics.bundle_compiles == 0
    # The snapshot exposes both the cache's split and the store's own
    # counters when a store is attached.
    snapshot = warmed.snapshot()
    assert snapshot["cache"]["store_hits"] == 1
    assert snapshot["store"]["hits"] == 1
    assert "store" not in InferenceService().snapshot()


def test_service_outstanding_and_snapshot():
    service = InferenceService()
    assert service.outstanding == 0
    service.request(DeploymentSpec("lenet5", fidelity="timing"))
    service.request(DeploymentSpec("lenet5", fidelity="timing"))
    assert service.outstanding == 2
    snapshot = service.snapshot()
    assert snapshot["outstanding"] == 2
    assert snapshot["metrics"]["requests"] == 0
    service.run_pending()
    snapshot = service.snapshot()
    assert service.outstanding == 0
    assert snapshot["metrics"]["requests"] == 2
    assert snapshot["cache"]["misses"] == 1
    assert snapshot["workers"]["created"] == 1
