"""RequestScheduler: batching, FIFO within deployment, fairness."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.serve import DeploymentSpec, InferenceRequest, RequestScheduler

LENET = DeploymentSpec("lenet5")
RESNET = DeploymentSpec("resnet18")


def _submit(scheduler, deployment, count, start_id=0):
    for i in range(count):
        scheduler.submit(InferenceRequest(start_id + i, deployment))


def test_batches_group_by_deployment():
    scheduler = RequestScheduler(max_batch_size=8)
    _submit(scheduler, LENET, 3)
    _submit(scheduler, RESNET, 2, start_id=100)
    batches = scheduler.drain()
    assert [b.deployment.model for b in batches] == ["lenet5", "resnet18"]
    assert [len(b) for b in batches] == [3, 2]
    assert scheduler.pending() == 0


def test_fifo_within_a_deployment():
    scheduler = RequestScheduler(max_batch_size=2)
    _submit(scheduler, LENET, 5)
    batches = scheduler.drain()
    ids = [r.request_id for b in batches for r in b.requests]
    assert ids == [0, 1, 2, 3, 4]
    assert [len(b) for b in batches] == [2, 2, 1]


def test_fairness_deep_backlog_cannot_starve_other_models():
    """With a 10-deep lenet5 queue and 2 resnet18 requests, resnet18's
    first batch dispatches second, not after all of lenet5."""
    scheduler = RequestScheduler(max_batch_size=2)
    _submit(scheduler, LENET, 10)
    _submit(scheduler, RESNET, 2, start_id=100)
    order = [b.deployment.model for b in scheduler.drain()]
    assert order[0] == "lenet5"
    assert order[1] == "resnet18"  # served after ONE lenet batch, not five
    assert order.count("lenet5") == 5


def test_round_robin_alternates_equal_queues():
    scheduler = RequestScheduler(max_batch_size=1)
    for i in range(3):
        scheduler.submit(InferenceRequest(2 * i, LENET))
        scheduler.submit(InferenceRequest(2 * i + 1, RESNET))
    order = [b.deployment.model for b in scheduler.drain()]
    assert order == ["lenet5", "resnet18"] * 3


def test_next_batch_interleaves_with_submissions():
    scheduler = RequestScheduler(max_batch_size=4)
    _submit(scheduler, LENET, 2)
    first = scheduler.next_batch()
    assert first is not None and len(first) == 2
    assert scheduler.next_batch() is None
    _submit(scheduler, RESNET, 1, start_id=50)
    second = scheduler.next_batch()
    assert second is not None and second.deployment.model == "resnet18"
    assert second.batch_id == first.batch_id + 1


def test_arrival_order_is_assigned_on_submit():
    scheduler = RequestScheduler()
    a = InferenceRequest(7, LENET)
    b = InferenceRequest(8, RESNET)
    scheduler.submit(a)
    scheduler.submit(b)
    assert (a.arrival_order, b.arrival_order) == (0, 1)


def test_bad_batch_size_rejected():
    with pytest.raises(ReproError):
        RequestScheduler(max_batch_size=0)


# ----------------------------------------------------------------------
# Continuous batching: the admit-into-forming-batch path.
# ----------------------------------------------------------------------


def test_keep_open_admits_same_deployment_arrivals():
    scheduler = RequestScheduler(max_batch_size=8)
    _submit(scheduler, LENET, 2)
    batch = scheduler.next_batch(keep_open=True)
    assert not batch.sealed and len(batch) == 2
    # Same-deployment arrivals join the forming batch, skipping the queue.
    _submit(scheduler, LENET, 2, start_id=10)
    assert len(batch) == 4
    assert scheduler.pending() == 0
    assert scheduler.admitted_into_open == 2
    # Other deployments still queue normally.
    _submit(scheduler, RESNET, 1, start_id=20)
    assert len(batch) == 4 and scheduler.pending() == 1


def test_seal_is_the_admission_cutoff():
    scheduler = RequestScheduler(max_batch_size=8)
    _submit(scheduler, LENET, 1)
    batch = scheduler.next_batch(keep_open=True)
    scheduler.seal(batch)
    assert batch.sealed
    # Post-seal arrivals queue for the next batch; membership is final.
    _submit(scheduler, LENET, 3, start_id=10)
    assert len(batch) == 1 and scheduler.pending() == 3
    scheduler.seal(batch)  # idempotent
    assert len(scheduler.next_batch()) == 3


def test_open_batch_auto_seals_at_capacity():
    scheduler = RequestScheduler(max_batch_size=3)
    _submit(scheduler, LENET, 1)
    batch = scheduler.next_batch(keep_open=True)
    _submit(scheduler, LENET, 3, start_id=10)
    assert batch.sealed and len(batch) == 3
    assert scheduler.pending() == 1  # the arrival after the cutoff


def test_full_batch_is_never_kept_open():
    scheduler = RequestScheduler(max_batch_size=2)
    _submit(scheduler, LENET, 2)
    batch = scheduler.next_batch(keep_open=True)
    assert batch.sealed
    _submit(scheduler, LENET, 1, start_id=10)
    assert len(batch) == 2 and scheduler.pending() == 1


def test_one_forming_batch_per_deployment():
    scheduler = RequestScheduler(max_batch_size=8)
    _submit(scheduler, LENET, 2)
    first = scheduler.next_batch(keep_open=True)
    _submit(scheduler, LENET, 2, start_id=10)
    scheduler.seal(first)
    _submit(scheduler, LENET, 2, start_id=20)
    # A second open batch for the same deployment forms only after the
    # first sealed.
    second = scheduler.next_batch(keep_open=True)
    assert not second.sealed
    assert [r.request_id for r in second.requests] == [20, 21]


def test_mid_drain_submissions_keep_fairness():
    """Arrivals landing between next_batch calls (one dispatcher
    draining while traffic keeps coming) neither starve a deployment
    nor jump the round-robin ring."""
    scheduler = RequestScheduler(max_batch_size=2)
    _submit(scheduler, LENET, 4)
    _submit(scheduler, RESNET, 2, start_id=100)
    served = []
    while (batch := scheduler.next_batch(keep_open=True)) is not None:
        scheduler.seal(batch)
        served.append(batch.deployment.model)
        if len(served) == 1:
            # Mid-drain burst for the already-backlogged deployment.
            _submit(scheduler, LENET, 2, start_id=50)
        if len(served) == 2:
            _submit(scheduler, RESNET, 2, start_id=150)
    # Both deployments keep alternating; the burst never locks out the
    # other model.
    assert served == ["lenet5", "resnet18", "lenet5", "resnet18", "lenet5"]
    assert scheduler.pending() == 0
