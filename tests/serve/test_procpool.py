"""ProcessWorkerPool: spawn-safe dispatch, store rehydration, crash
recovery.  These tests start real worker processes (spawn), so they
share one module-scoped store with lenet5 prepublished — workers warm
up by fetching, not recompiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FastPathRunRequest
from repro.errors import ReproError
from repro.serve import BundleCache
from repro.serve.procpool import ProcessWorkerPool
from repro.store import BundleStore


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("procpool-store")
    cache = BundleCache(store=BundleStore(root))
    cache.bundle_for("lenet5", "nv_small")  # publish for the workers
    return root


def _run_request(request_id: int) -> FastPathRunRequest:
    return FastPathRunRequest(
        request_id=request_id,
        model="lenet5",
        config="nv_small",
        precision="int8",
        execution_mode="cycle_accurate",
        input_seed=(7, request_id),
    )


def test_batches_execute_and_replay_bit_identical(store_root):
    """One worker process serves batches rehydrated from the store;
    re-running the same requests reproduces outputs exactly."""
    with ProcessWorkerPool(processes=1, store_root=store_root) as pool:
        handle = pool.handles[0]
        first = pool.run_batch(handle, [_run_request(0), _run_request(1)])
        again = pool.run_batch(handle, [_run_request(0), _run_request(1)])
    assert [r.request_id for r in first] == [0, 1]
    assert all(r.ok for r in first)
    for a, b in zip(first, again):
        assert np.array_equal(a.output, b.output)
        assert a.cycles == b.cycles
    assert handle.stats.batches == 2 and handle.stats.runs == 4
    assert handle.stats.busy_seconds > 0


def test_dead_worker_respawns_and_batch_retries(store_root):
    with ProcessWorkerPool(processes=1, store_root=store_root) as pool:
        handle = pool.handles[0]
        before = pool.run_batch(handle, [_run_request(0)])
        handle.process.kill()
        handle.process.join(timeout=10)
        after = pool.run_batch(handle, [_run_request(0)])
        assert np.array_equal(before[0].output, after[0].output)
        assert handle.stats.restarts == 1 and pool.restarts == 1
        assert handle.alive()


def test_worker_side_failure_reports_without_killing_worker(store_root):
    with ProcessWorkerPool(processes=1, store_root=store_root) as pool:
        handle = pool.handles[0]
        bad = FastPathRunRequest(
            request_id=0, model="not-a-model", config="nv_small", precision="int8"
        )
        with pytest.raises(ReproError, match="failed a batch"):
            pool.run_batch(handle, [bad])
        # The process survived the failure and keeps serving.
        assert handle.alive() and handle.stats.restarts == 0
        assert pool.run_batch(handle, [_run_request(1)])[0].ok


def test_shipped_bundle_key_is_checked(store_root):
    with ProcessWorkerPool(processes=1, store_root=store_root) as pool:
        handle = pool.handles[0]
        forged = FastPathRunRequest(
            request_id=0,
            model="lenet5",
            config="nv_small",
            precision="int8",
            bundle_key=("bogus",),
            input_seed=(7, 0),
        )
        with pytest.raises(ReproError, match="does not name this deployment"):
            pool.run_batch(handle, [forged])


def test_pool_rejects_bad_process_count():
    with pytest.raises(ReproError):
        ProcessWorkerPool(processes=0)
