"""SocWorker / WorkerPool: reuse must be bit-identical to fresh SoCs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baremetal import generate_baremetal
from repro.core import Soc
from repro.errors import ReproError
from repro.nvdla import NV_SMALL
from repro.serve import (
    DeploymentSpec,
    SocWorker,
    WorkerPool,
    hardware_key,
    make_input_for,
    pack_input_image,
)

SPEC = DeploymentSpec("lenet5")


def _fresh_run(bundle, image=None):
    soc = Soc(NV_SMALL)
    soc.load_bundle(bundle)
    if image is not None:
        packed = pack_input_image(bundle, image)
        soc.preload_dram(packed.load_address, packed.data)
    return soc.run_inference(bundle)


@pytest.fixture(scope="module")
def lenet_bundle():
    from repro.nn.zoo import lenet5

    return generate_baremetal(lenet5(), NV_SMALL)


@pytest.fixture(scope="module")
def tiny_bundle():
    # Module-local tiny network (the conftest fixture is function-scoped).
    from repro.nn.graph import Network
    from repro.nn.layers import PoolKind

    net = Network("tiny-serve", seed=7)
    data = net.add_input("data", (1, 8, 8))
    conv = net.add_conv("conv1", data, num_output=8, kernel_size=3)
    relu = net.add_relu("relu1", conv)
    pool = net.add_pool("pool1", relu, PoolKind.MAX, kernel_size=2, stride=2)
    net.add_fc("fc1", pool, num_output=4)
    net.validate()
    return generate_baremetal(net, NV_SMALL)


def test_worker_reuse_across_bundles_bit_identical(lenet_bundle, tiny_bundle):
    """One worker serving alternating deployments reproduces fresh-SoC
    outputs and cycle counts exactly."""
    worker = SocWorker(0, SPEC)
    sequence = [lenet_bundle, tiny_bundle, lenet_bundle]
    for bundle in sequence:
        reused = worker.run(bundle)
        fresh = _fresh_run(bundle)
        assert reused.ok and fresh.ok
        assert reused.cycles == fresh.cycles
        assert reused.output is not None
        assert np.array_equal(reused.output, fresh.output)
    assert worker.stats.runs == len(sequence)


def test_same_bundle_fast_path_bit_identical(lenet_bundle, rng):
    """Back-to-back same-bundle runs (no DRAM scrub, kept fetch cache,
    fresh inputs) match fresh-SoC runs input by input."""
    from repro.nn.zoo import lenet5

    worker = SocWorker(0, SPEC)
    net = lenet5()
    worker.run(lenet_bundle)  # prime the fast path
    for _ in range(3):
        image = make_input_for(net, rng)
        reused = worker.run(lenet_bundle, input_image=image)
        fresh = _fresh_run(lenet_bundle, image)
        assert reused.ok and fresh.ok
        assert reused.cycles == fresh.cycles
        assert np.array_equal(reused.output, fresh.output)


def test_explicit_input_equals_baked_preload(lenet_bundle):
    """Packing the bundle's own calibration image reproduces the run
    driven by the trace-extracted ``input.bin``."""
    worker = SocWorker(0, SPEC)
    baked = worker.run(lenet_bundle)
    repacked = worker.run(lenet_bundle, input_image=lenet_bundle.input_image)
    assert baked.ok and repacked.ok
    assert np.array_equal(baked.output, repacked.output)


def test_pack_input_rejects_wrong_shape(lenet_bundle):
    with pytest.raises(ReproError):
        pack_input_image(lenet_bundle, np.zeros((3, 2, 2), dtype=np.float32))


def test_testsystem_reuse_matches_fresh_system(lenet_bundle, tiny_bundle):
    """A reused ZCU102 TestSystem resets to power-on state per
    experiment, so repeated runs match fresh systems exactly."""
    from repro.core import TestSystem

    shared = TestSystem(Soc(NV_SMALL))
    for bundle in (lenet_bundle, tiny_bundle, lenet_bundle):
        reused = shared.run_experiment(bundle)
        fresh = TestSystem(Soc(NV_SMALL)).run_experiment(bundle)
        assert reused.ok and fresh.ok
        assert reused.cycles == fresh.cycles
        assert np.array_equal(reused.output, fresh.output)


def test_pool_shares_workers_across_models_on_same_hardware():
    pool = WorkerPool()
    lenet_worker = pool.worker_for(DeploymentSpec("lenet5"))
    resnet_worker = pool.worker_for(DeploymentSpec("resnet18"))
    assert lenet_worker is resnet_worker  # hardware key ignores the model
    assert pool.created == 1 and pool.reused == 1
    other = pool.worker_for(DeploymentSpec("lenet5", config="nv_full"))
    assert other is not lenet_worker
    assert hardware_key(DeploymentSpec("lenet5")) == hardware_key(
        DeploymentSpec("resnet18")
    )


def test_pool_round_robins_multiple_workers():
    pool = WorkerPool(workers_per_key=2)
    spec = DeploymentSpec("lenet5")
    first = pool.worker_for(spec)
    second = pool.worker_for(spec)
    assert first is not second
    assert pool.worker_for(spec) is first
    assert pool.worker_for(spec) is second
    with pytest.raises(ReproError):
        WorkerPool(workers_per_key=0)


def test_replay_keyed_by_digest_not_identity(lenet_bundle):
    """An independent rebuild of the same deployment (equal artifact
    digest, different object) still takes the replay fast path, and
    stays bit-identical to a fresh SoC."""
    from repro.nn.zoo import lenet5

    rebuilt = generate_baremetal(lenet5(), NV_SMALL)
    assert rebuilt is not lenet_bundle
    assert rebuilt.artifact_digest() == lenet_bundle.artifact_digest()

    worker = SocWorker(0, SPEC)
    worker.run(lenet_bundle)
    assert worker._is_replay(rebuilt)  # digest match, not identity
    replayed = worker.run(rebuilt)
    fresh = _fresh_run(rebuilt)
    assert np.array_equal(replayed.output, fresh.output)
    assert replayed.cycles == fresh.cycles


def test_worker_does_not_pin_evicted_bundles(tiny_bundle):
    """The worker's replay bookkeeping holds only a weakref + digest:
    dropping the last strong reference frees the bundle even though the
    worker just ran it."""
    import gc
    import weakref

    from repro.nn.graph import Network
    from repro.nn.layers import PoolKind

    net = Network("tiny-serve-evict", seed=11)
    data = net.add_input("data", (1, 8, 8))
    conv = net.add_conv("conv1", data, num_output=4, kernel_size=3)
    net.add_relu("relu1", conv)
    net.validate()
    bundle = generate_baremetal(net, NV_SMALL)

    worker = SocWorker(0, SPEC)
    worker.run(bundle)
    tracker = weakref.ref(bundle)
    del bundle
    gc.collect()
    assert tracker() is None  # the worker kept no strong reference
    # The digest survives, so the worker still knows what DRAM holds —
    # and a different bundle forces the full reload path.
    assert worker._last_bundle() is None
    assert not worker._is_replay(tiny_bundle)
    assert worker.run(tiny_bundle).ok
