"""InferenceService end-to-end: mixed queues, metrics, reproducibility."""

from __future__ import annotations

import numpy as np

from repro.serve import (
    BundleCache,
    DeploymentSpec,
    InferenceService,
    make_input_for,
    percentile,
    shared_cache,
)
from repro.serve.metrics import LatencySummary

LENET = DeploymentSpec("lenet5")


def test_mixed_queue_serves_every_request_once():
    service = InferenceService(max_batch_size=2)
    timing = DeploymentSpec("lenet5", fidelity="timing")
    submitted = [service.request(LENET) for _ in range(3)]
    submitted += [service.request(timing) for _ in range(2)]
    responses = service.run_pending()
    assert sorted(r.request_id for r in responses) == sorted(
        r.request_id for r in submitted
    )
    assert all(r.ok for r in responses)
    # Two deployments → two flow builds; 3 more served requests.
    assert service.metrics.bundle_misses == 2
    assert service.metrics.requests == 5
    assert service.metrics.failures == 0
    # Functional runs carry outputs; timing runs don't.
    by_id = {r.request_id: r for r in responses}
    for request in submitted[:3]:
        assert by_id[request.request_id].output is not None
    for request in submitted[3:]:
        assert by_id[request.request_id].output is None


def test_shared_cache_prewarms_service():
    cache = BundleCache()
    cache.bundle_for("lenet5", "nv_small", fidelity="timing")
    service = InferenceService(cache=cache)
    service.request(DeploymentSpec("lenet5", fidelity="timing"))
    responses = service.run_pending()
    assert responses[0].cache_hit  # built elsewhere, hit here
    assert service.metrics.bundle_hits == 1
    assert service.metrics.bundle_misses == 0


def test_synthesised_inputs_are_reproducible():
    """Two services with the same input seed produce identical outputs
    for requests that carry no input image."""
    outputs = []
    for _ in range(2):
        service = InferenceService(input_seed=99)
        service.request(LENET)
        service.request(LENET)
        responses = service.run_pending()
        outputs.append([r.output for r in responses])
    for a, b in zip(*outputs):
        assert np.array_equal(a, b)


def test_cached_bundles_share_artifact_digest():
    service = InferenceService()
    rng = np.random.default_rng(3)
    from repro.nn.zoo import lenet5

    net = lenet5()
    service.request(LENET, make_input_for(net, rng))
    service.request(LENET, make_input_for(net, rng))
    service.run_pending()
    bundle, hit = service.bundle_for(LENET)
    assert hit
    # The digest is stable across calls and covers the whole artefact set.
    assert bundle.artifact_digest() == bundle.artifact_digest()
    assert len(bundle.artifact_digest()) == 64


def test_metrics_percentiles_and_render():
    assert percentile([], 50) == 0.0
    assert percentile([5.0], 99) == 5.0
    samples = [float(v) for v in range(1, 101)]
    assert percentile(samples, 50) == 50.0
    assert percentile(samples, 99) == 99.0
    summary = LatencySummary.of(samples)
    assert summary.count == 100
    assert summary.max == 100.0
    empty = LatencySummary.of([])
    assert empty.count == 0 and empty.p99 == 0.0

    service = InferenceService()
    service.request(DeploymentSpec("lenet5", fidelity="timing"))
    service.run_pending()
    text = service.metrics.render()
    assert "throughput" in text and "hit rate" in text and "p99" in text


def test_synthesised_inputs_independent_of_batch_composition():
    """The per-request seed convention: request i's synthesised input
    depends only on (input_seed, request_id), so services draining the
    same workload with different batch sizes — different interleavings
    — return bit-identical outputs per request."""
    workload = [DeploymentSpec("lenet5"), DeploymentSpec("lenet5"),
                DeploymentSpec("lenet5"), DeploymentSpec("lenet5")]
    by_batch_size = {}
    for batch_size in (1, 4):
        service = InferenceService(
            cache=shared_cache(), max_batch_size=batch_size, input_seed=7
        )
        for deployment in workload:
            service.request(deployment)
        responses = sorted(service.run_pending(), key=lambda r: r.request_id)
        by_batch_size[batch_size] = responses
    for small, big in zip(by_batch_size[1], by_batch_size[4]):
        assert np.array_equal(small.output, big.output)
        assert small.cycles == big.cycles
