"""Mixed execution tiers in one service: metrics, fairness, identity.

A production rollout runs the calibrated fast tier next to the
cycle-accurate tier (canary vs fleet).  One :class:`InferenceService`
must keep the two apart everywhere it matters: separate workers,
separate per-deployment metrics, fair batch interleaving — while the
tensors they return stay bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import calibrate
from repro.errors import ReproError
from repro.serve import (
    BundleCache,
    DeploymentSpec,
    FastPathWorker,
    InferenceService,
    SocWorker,
    hardware_key,
    make_input_for,
)

CYCLE = DeploymentSpec("lenet5")
FAST = DeploymentSpec("lenet5", execution_mode="fast")


@pytest.fixture(scope="module")
def cache():
    return BundleCache()


@pytest.fixture(scope="module")
def table(cache):
    return calibrate(("lenet5",), cache=cache)


def test_unknown_execution_mode_is_rejected():
    with pytest.raises(ReproError, match="execution mode"):
        DeploymentSpec("lenet5", execution_mode="warp")


def test_modes_do_not_share_workers(cache, table):
    assert hardware_key(CYCLE) != hardware_key(FAST)
    service = InferenceService(cache=cache, calibration=table)
    service.request(CYCLE)
    service.request(FAST)
    responses = service.run_pending()
    assert all(r.ok for r in responses)
    workers = service.pool.all_workers()
    assert sorted(type(w).__name__ for w in workers) == ["FastPathWorker", "SocWorker"]
    assert service.metrics.workers_created == 2


def test_mixed_modes_serve_identical_tensors_and_split_metrics(cache, table):
    rng = np.random.default_rng(42)
    from repro.nn.zoo import lenet5

    net = lenet5()
    service = InferenceService(cache=cache, max_batch_size=2, calibration=table)
    images = [make_input_for(net, rng) for _ in range(4)]
    cycle_ids = [service.request(CYCLE, image).request_id for image in images]
    fast_ids = [service.request(FAST, image).request_id for image in images]
    responses = {r.request_id: r for r in service.run_pending()}
    assert all(r.ok for r in responses.values())

    # Identity: per input image, the two tiers return the same tensor.
    for cycle_id, fast_id in zip(cycle_ids, fast_ids):
        assert np.array_equal(responses[cycle_id].output, responses[fast_id].output)
    # The fast tier's cycles stay inside the calibrated error band.
    for cycle_id, fast_id in zip(cycle_ids, fast_ids):
        measured = responses[cycle_id].cycles
        estimated = responses[fast_id].cycles
        assert abs(estimated - measured) / measured <= 0.10

    # Per-deployment metrics split the traffic by tier.
    per = service.metrics.per_deployment
    assert per[CYCLE.describe()].requests == 4
    assert per[FAST.describe()].requests == 4
    assert per[CYCLE.describe()].failures == 0 and per[FAST.describe()].failures == 0
    assert service.metrics.requests == 8
    # Both tiers report the same simulated timescale (within the band),
    # while the cycle-accurate tier pays far more host wall time.
    assert per[FAST.describe()].wall_seconds < per[CYCLE.describe()].wall_seconds


def test_mixed_mode_batches_interleave_fairly(cache, table):
    """Round-robin across deployments must include mode in the ring."""
    service = InferenceService(cache=cache, max_batch_size=2, calibration=table)
    for _ in range(4):
        service.request(CYCLE)
    for _ in range(4):
        service.request(FAST)
    responses = service.run_pending()
    # Dispatch order by batch: cycle, fast, cycle, fast (2 requests each).
    order = []
    for response in sorted(responses, key=lambda r: r.batch_id):
        if not order or order[-1][0] != response.batch_id:
            order.append((response.batch_id, response.deployment.execution_mode))
    assert [mode for _, mode in order] == ["cycle_accurate", "fast"] * 2


def test_fast_deployment_without_calibration_fails_loudly(cache):
    service = InferenceService(cache=cache)  # no table handed to the pool
    service.request(FAST)
    with pytest.raises(ReproError, match="CalibrationTable"):
        service.run_pending()


def test_worker_types_expose_shared_interface(cache, table):
    bundle = cache.bundle_for("lenet5", "nv_small")
    soc_worker = SocWorker(0, CYCLE)
    fast_worker = FastPathWorker(1, FAST, table)
    a = soc_worker.run(bundle)
    b = fast_worker.run(bundle)
    assert a.ok and b.ok
    assert np.array_equal(a.output, b.output)
    assert soc_worker.stats.runs == fast_worker.stats.runs == 1
