"""End-to-end tracing through the serving layers.

Single-process: every request becomes one single-rooted tree with
execute + per-unit attribution; bundle resolution is classified
compile/store/memory.  Cross-process: the 2-process plane's worker
spans ship back over the pickle boundary and stitch under the plane's
roots with no orphans — the tentpole acceptance criterion.
"""

from __future__ import annotations

import pytest

from repro.obs import Tracer, build_trees, to_chrome_trace
from repro.serve import (
    BundleCache,
    DeploymentSpec,
    InferenceService,
    ServingPlane,
)
from repro.store import BundleStore

LENET = DeploymentSpec("lenet5")


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    """Store-backed cache shared by the module: compile once, and give
    the plane's workers a store to rehydrate from."""
    cache = BundleCache(store=BundleStore(tmp_path_factory.mktemp("trace-store")))
    cache.bundle_for("lenet5", "nv_small")
    return cache


def _request_trees(spans):
    return [t for t in build_trees(spans) if t.trace_id.startswith("req-")]


def test_service_traces_every_request_as_one_tree(cache):
    tracer = Tracer(enabled=True, process=-1)
    service = InferenceService(cache=cache, max_batch_size=2, tracer=tracer)
    for _ in range(3):
        service.request(LENET)
    responses = service.run_pending()
    assert all(r.ok for r in responses)

    trees = _request_trees(tracer.finished)
    assert len(trees) == 3
    for tree in trees:
        assert len(tree.roots) == 1 and tree.orphans == []
        names = [node.name for _, node in tree.roots[0].walk()]
        assert names[0] == "request"
        assert "execute" in names
        assert any(name.startswith("unit.") for name in names)
    # The execute span carries the simulated-cycle annotation, and the
    # request root records the request's identity.
    root = trees[0].roots[0]
    assert root.span["attrs"]["request_id"] == int(
        trees[0].trace_id.removeprefix("req-"))
    execute = next(n for _, n in root.walk() if n.name == "execute")
    assert execute.span["attrs"]["cycles"] > 0
    # Unit spans nest inside the execute window, cycle sums attributed.
    units = [n for _, n in root.walk() if n.name.startswith("unit.")]
    for unit in units:
        assert unit.span["start_s"] >= execute.span["start_s"]
        assert unit.span["end_s"] <= execute.span["end_s"] + 1e-9
        assert unit.span["attrs"]["cycles"] > 0


def test_batch_spans_classify_bundle_resolution(tmp_path):
    # Fresh cache + store: first batch compiles, a second service over
    # the same store fetches, and a warm repeat hits memory.
    store = BundleStore(tmp_path / "store")
    tracer = Tracer(enabled=True, process=-1)
    service = InferenceService(
        cache=BundleCache(store=store), max_batch_size=4, tracer=tracer)
    service.request(LENET)
    service.run_pending()
    service.request(LENET)
    service.run_pending()

    second = Tracer(enabled=True, process=-1)
    fetcher = InferenceService(
        cache=BundleCache(store=store), max_batch_size=4, tracer=second)
    fetcher.request(LENET)
    fetcher.run_pending()

    def sources(t):
        return [s["attrs"]["source"] for s in t.finished
                if s["name"] == "bundle.resolve"]

    assert sources(tracer) == ["compile", "memory"]
    assert sources(second) == ["store"]


def test_batch_trace_links_requests_by_attr(cache):
    tracer = Tracer(enabled=True, process=-1)
    service = InferenceService(cache=cache, max_batch_size=8, tracer=tracer)
    for _ in range(2):
        service.request(LENET)
    service.run_pending()
    batches = [t for t in build_trees(tracer.finished)
               if t.trace_id.startswith("batch-")]
    assert len(batches) == 1
    (batch,) = batches
    assert batch.roots[0].span["attrs"]["size"] == 2
    batch_id = batch.roots[0].span["attrs"]["batch_id"]
    for tree in _request_trees(tracer.finished):
        assert tree.roots[0].span["attrs"]["batch_id"] == batch_id


def test_default_service_records_nothing(cache):
    service = InferenceService(cache=cache)
    service.request(LENET)
    assert all(r.ok for r in service.run_pending())
    assert len(service.tracer) == 0  # NULL_TRACER by default


def test_service_metrics_histograms_record_requests(cache):
    service = InferenceService(cache=cache)
    for _ in range(3):
        service.request(LENET)
    service.run_pending()
    wall = service.metrics.registry.get("serve.request.wall.seconds")
    cycles = service.metrics.registry.get("serve.request.cycles")
    assert wall.count == 3 and cycles.count == 3
    assert cycles.min > 0


def test_two_process_plane_stitches_across_the_boundary(cache):
    workload = [LENET] * 4
    tracer = Tracer(enabled=True, process=-1)
    with ServingPlane(processes=2, cache=cache, tracer=tracer) as plane:
        responses = plane.serve([plane.request(d) for d in workload])
    assert all(r.ok for r in responses)

    spans = tracer.finished
    trees = _request_trees(spans)
    assert len(trees) == 4
    for tree in trees:
        assert len(tree.roots) == 1
        assert tree.orphans == []
        names = [node.name for _, node in tree.roots[0].walk()]
        # Plane-side intake...
        assert names[0] == "request" and "queue" in names
        # ...stitched to worker-side serving.
        assert "worker.serve" in names and "execute" in names
        worker = next(n for _, n in tree.roots[0].walk()
                      if n.name == "worker.serve")
        assert worker.span["process"] in (0, 1)
        assert tree.roots[0].span["process"] == -1
    # Worker spans crossed the boundary from both workers or at least
    # one (scheduling may pack a tiny workload onto one process), and
    # the export is Perfetto-loadable.
    worker_pids = {s["process"] for s in spans if s["name"] == "worker.serve"}
    assert worker_pids <= {0, 1} and worker_pids
    chrome = to_chrome_trace(spans)
    assert len([e for e in chrome["traceEvents"] if e["ph"] == "X"]) == len(spans)


def test_plane_spans_all_closed_across_fidelities(cache):
    """No half-open spans survive a mixed-fidelity plane run."""
    tracer = Tracer(enabled=True, process=-1)
    timing = DeploymentSpec("lenet5", fidelity="timing")
    with ServingPlane(processes=1, cache=cache, tracer=tracer) as plane:
        responses = plane.serve([plane.request(timing), plane.request(LENET)])
    assert all(r.ok for r in responses)
    # Every recorded span is finished (end_s set) — nothing half-open.
    assert all(s["end_s"] is not None for s in tracer.finished)
    trees = build_trees(tracer.finished)
    assert sum(len(t.orphans) for t in trees) == 0
