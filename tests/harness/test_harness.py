"""Harness and diagrams: experiment runners produce shape-correct data."""

from __future__ import annotations

import pytest

from repro.harness import (
    format_table,
    ratio_summary,
    run_ablation_baremetal,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
    run_table2,
)
from repro.harness.reporting import Comparison
from repro.nvdla import NV_SMALL


def test_table1_report_runner():
    report = run_table1()
    assert "nv_small NVDLA" in report.rows
    assert report.rows["Our SoC"].luts > report.rows["uRISC_V core"].luts


def test_table2_lenet_row_shape():
    rows = run_table2(models=("lenet5",), fidelity="timing")
    row = rows[0]
    assert row.layers == 9
    assert abs(row.model_size_mb - 1.7) < 0.1
    assert 0.3 <= row.ratio <= 3.0  # within band of the paper's 4.8 ms
    assert row.speedup_vs_baseline and row.speedup_vs_baseline > 10


def test_table2_fast_mode_matches_cycle_accurate():
    """The calibrated fast tier regenerates Table II within its band."""
    reference = run_table2(models=("lenet5",), fidelity="timing")[0]
    fast = run_table2(models=("lenet5",), fidelity="timing", execution_mode="fast")[0]
    assert abs(fast.cycles - reference.cycles) / reference.cycles <= 0.10


def test_fastpath_validation_rows():
    from repro.harness import run_fastpath_validation
    from repro.nvdla.config import Precision

    rows = run_fastpath_validation(
        ("lenet5",), NV_SMALL, Precision.INT8, fidelity="timing"
    )
    assert len(rows) == 1
    row = rows[0]
    assert row.model == "lenet5" and row.config == "nv_small"
    assert row.measured_cycles > 0
    assert abs(row.error) <= 0.10


def test_fig1_diagram_mentions_artefacts():
    text = run_fig1("lenet5")
    assert "NVDLA compiler" in text
    assert "read/write_reg" in text
    assert "weights.bin" in text


def test_fig2_diagram_reflects_soc():
    text = run_fig2(NV_SMALL)
    assert "nv_small" in text
    assert "0x100000" in text
    assert "64 MACs" in text.replace("  ", " ")


def test_fig3_diagram_reports_trace_counts():
    text = run_fig3("lenet5")
    assert "csb_adaptor" in text
    assert "dbb_adaptor" in text


def test_fig4_diagram_reports_preload():
    text = run_fig4("lenet5")
    assert "SmartConnect" in text
    assert "preloaded" in text
    assert "MIG DDR4" in text


def test_ablation_baremetal_monotone_in_overhead():
    points = run_ablation_baremetal("lenet5")
    linux_points = [p for p in points if p.label.startswith("linux")]
    values = [p.ms for p in linux_points]
    assert values == sorted(values)  # more overhead, more latency
    bare = points[0]
    assert bare.ms < linux_points[-1].ms


def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert len(lines) == 5  # title + header + rule + 2 rows


def test_ratio_summary():
    comparisons = [Comparison("x", 10.0, 20.0), Comparison("y", 10.0, 5.0)]
    text = ratio_summary(comparisons)
    assert "geomean" in text and "2 rows" in text
    assert ratio_summary([]) == "no comparable rows"
