"""Markdown report generator."""

from __future__ import annotations

import pytest

from repro.harness.report_md import generate_report

# Regenerates every table/figure end to end — the slowest module in
# the suite; excluded from the tier-0 loop (pytest -m "not slow").
pytestmark = pytest.mark.slow


def test_report_contains_all_sections():
    text = generate_report(
        include_figures=True,
        table2_models=("lenet5",),
        table3_models=("lenet5",),
    )
    for section in (
        "# Generated experiment report",
        "## Table I",
        "## Table II",
        "## Table III",
        "### A1",
        "### A2",
        "### A3",
        "### Fig. 1",
        "### Fig. 2",
    ):
        assert section in text
    assert "nv_full feasibility: over-utilised" in text
    assert "| lenet5 |" in text


def test_report_cli(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "r.md"
    # Full tables through the CLI default (three shared models).
    assert main(["report", "--out", str(out)]) == 0
    text = out.read_text()
    assert "## Table II" in text and "resnet50" in text
