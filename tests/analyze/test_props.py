"""Property: the analyzer never crashes on a corrupted chain.

Any single descriptor write, replaced with any 32-bit value, must
yield either a clean report or typed diagnostics — an uncaught
exception from the analyzer is itself a bug, whatever the input.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.zoo import ZOO
from repro.nvdla import NV_SMALL
from repro.nvdla.programming import WRITE, build_chains
from repro.analyze import AnalysisReport, Diagnostic, analyze_chains
from repro.compiler import CompileOptions, compile_network

_STATE: dict = {}


def _loadable():
    if "loadable" not in _STATE:
        _STATE["loadable"] = compile_network(ZOO["lenet5"](), NV_SMALL, CompileOptions())
        chains = build_chains(_STATE["loadable"], NV_SMALL)
        _STATE["writes"] = [
            (ci, ei)
            for ci, chain in enumerate(chains)
            for ei, event in enumerate(chain.events)
            if event.kind == WRITE
        ]
    return _STATE["loadable"]


@settings(max_examples=60, deadline=None)
@given(data=st.data(), value=st.integers(min_value=0, max_value=2**32 - 1))
def test_any_single_field_mutation_yields_a_report(data, value):
    loadable = _loadable()
    chains = build_chains(loadable, NV_SMALL)
    chain_index, event_index = data.draw(st.sampled_from(_STATE["writes"]))
    chain = chains[chain_index]
    chain.events[event_index] = replace(chain.events[event_index], value=value)
    report = analyze_chains(chains, loadable, NV_SMALL)
    assert isinstance(report, AnalysisReport)
    assert all(isinstance(d, Diagnostic) for d in report.diagnostics)
    # No pass may die on corrupted input: crashes surface as a
    # dedicated code, and we forbid them outright here.
    crashes = [d for d in report.diagnostics if d.code == "analyzer-crash"]
    assert not crashes, [d.render() for d in crashes]
    # Whatever was found serializes.
    assert report.to_json()


@settings(max_examples=20, deadline=None)
@given(value=st.integers(min_value=0, max_value=2**32 - 1))
def test_mutated_register_value_never_escapes_raise_contract(value):
    """raise_for_errors raises exactly when the report is dirty."""
    from repro.errors import StaticAnalysisError

    loadable = _loadable()
    chains = build_chains(loadable, NV_SMALL)
    chain = chains[0]
    writes = [i for i, e in enumerate(chain.events) if e.kind == WRITE]
    chain.events[writes[0]] = replace(chain.events[writes[0]], value=value)
    report = analyze_chains(chains, loadable, NV_SMALL)
    if report.clean:
        report.raise_for_errors()  # must be a no-op
    else:
        with pytest.raises(StaticAnalysisError):
            report.raise_for_errors()
