"""Analyzer core: clean reports, serialization, typed failures."""

from __future__ import annotations

import json

import pytest

from repro.nn.zoo import ZOO
from repro.nvdla import NV_SMALL
from repro.nvdla.programming import build_chains
from repro.analyze import (
    AnalysisReport,
    Diagnostic,
    Severity,
    analyze_chains,
    analyze_loadable,
    pass_ids,
)
from repro.compiler import CompileOptions, compile_network
from repro.errors import AnalysisError, ReproError, StaticAnalysisError

from tests.analyze.helpers import shift_first_write


@pytest.fixture(scope="module")
def lenet_loadable():
    return compile_network(ZOO["lenet5"](), NV_SMALL, CompileOptions())


def test_clean_zoo_model(lenet_loadable):
    report = analyze_loadable(lenet_loadable, NV_SMALL)
    assert report.clean
    assert not report.errors and not report.warnings
    assert report.chains == len(
        [op for op in lenet_loadable.schedule.ops if op.kind != "cpusoftmax"]
    )
    assert report.surfaces > report.chains  # every layer reads AND writes
    assert report.passes == pass_ids()


def test_compile_verify_kwarg_passes_clean_model():
    loadable = compile_network(ZOO["lenet5"](), NV_SMALL, CompileOptions(), verify=True)
    assert loadable.network == "lenet5"


def test_pass_selection_runs_subset(lenet_loadable):
    report = analyze_loadable(lenet_loadable, NV_SMALL, passes=["cbuf"])
    assert report.passes == ["cbuf"]
    assert all(d.pass_id in ("cbuf", "chain", "descriptor") for d in report.diagnostics)


def test_raise_for_errors_is_typed(lenet_loadable):
    chains = shift_first_write(
        build_chains(lenet_loadable, NV_SMALL), "SDP", "D_DST_ADDR_LOW", 0x0400_0000
    )
    report = analyze_chains(chains, lenet_loadable, NV_SMALL)
    assert not report.clean
    with pytest.raises(StaticAnalysisError) as excinfo:
        report.raise_for_errors()
    err = excinfo.value
    assert isinstance(err, AnalysisError) and isinstance(err, ReproError)
    assert err.diagnostics and all(isinstance(d, Diagnostic) for d in err.diagnostics)
    assert "static analysis found" in str(err)


def test_report_json_round_trip(lenet_loadable):
    chains = shift_first_write(
        build_chains(lenet_loadable, NV_SMALL), "SDP", "D_DST_ADDR_LOW", 0x0400_0000
    )
    report = analyze_chains(chains, lenet_loadable, NV_SMALL)
    payload = json.loads(report.to_json())
    assert payload["artifact"] == "lenet5/nv_small"
    assert payload["clean"] is False
    assert payload["counts"]["error"] == len(report.errors)
    revived = [Diagnostic.from_dict(d) for d in payload["diagnostics"]]
    assert revived == report.sorted_diagnostics()


def test_diagnostic_round_trip_and_render():
    diag = Diagnostic(
        severity=Severity.ERROR,
        pass_id="dma-bounds",
        code="dma-out-of-window",
        message="read escapes DRAM",
        layer="conv1",
        op_index=3,
        unit="CDMA",
        register="D_DAIN_ADDR_LOW_0",
        surface="act:conv1",
    )
    assert Diagnostic.from_dict(diag.to_dict()) == diag
    text = diag.render()
    assert "error[dma-bounds/dma-out-of-window]" in text
    assert "conv1" in text and "CDMA" in text


def test_bad_op_index_is_reported_not_raised(lenet_loadable):
    chains = build_chains(lenet_loadable, NV_SMALL)
    chains[0].op_index = 99
    report = analyze_chains(chains, lenet_loadable, NV_SMALL)
    assert any(d.code == "bad-op-index" for d in report.errors)


def test_severity_ordering():
    assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank
    report = AnalysisReport(artifact="x", config="nv_small")
    report.add(Diagnostic(severity=Severity.INFO, pass_id="cbuf", code="a", message="i"))
    report.add(Diagnostic(severity=Severity.ERROR, pass_id="cbuf", code="b", message="e"))
    assert [d.severity for d in report.sorted_diagnostics()] == [
        Severity.ERROR, Severity.INFO,
    ]
    assert report.clean is False
