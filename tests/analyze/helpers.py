"""Shared chain-mutation helpers for the analyzer tests."""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.nvdla.programming import WRITE, LayerChain


def rewrite_first_write(
    chains: list[LayerChain], unit: str, register: str, fn: Callable[[int], int]
) -> list[LayerChain]:
    """Apply ``fn`` to the first matching descriptor write, in place."""
    for chain in chains:
        for index, event in enumerate(chain.events):
            if event.kind == WRITE and event.unit == unit and event.register == register:
                chain.events[index] = replace(event, value=fn(event.value) & 0xFFFFFFFF)
                return chains
    raise AssertionError(f"no {unit}.{register} write found to mutate")


def shift_first_write(
    chains: list[LayerChain], unit: str, register: str, delta: int
) -> list[LayerChain]:
    return rewrite_first_write(chains, unit, register, lambda v: v + delta)
