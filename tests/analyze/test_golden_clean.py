"""Golden artifacts analyze clean, end to end through the bundle path.

The same two builds the codegen golden fixtures pin (one per hardware
class) must come out of the full offline flow with a spotless static
analysis — including the command-stream decode check that only
:func:`analyze_bundle` runs.
"""

from __future__ import annotations

import pytest

from repro.baremetal import generate_baremetal
from repro.nn.zoo import lenet5, resnet18_cifar
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision
from repro.analyze import analyze_bundle, pass_ids

CASES = {
    "lenet5_nv_small": (lenet5, NV_SMALL, Precision.INT8),
    "resnet18_nv_full": (resnet18_cifar, NV_FULL, Precision.FP16),
}


@pytest.fixture(scope="module", params=sorted(CASES))
def bundle_case(request):
    builder, config, precision = CASES[request.param]
    return generate_baremetal(builder(), config, precision=precision), config


def test_golden_bundle_analyzes_clean(bundle_case):
    bundle, config = bundle_case
    report = analyze_bundle(bundle, config)
    assert report.clean, report.render()
    assert not report.warnings, report.render(verbose=True)
    assert report.passes == pass_ids() + ["command-stream"]
    assert report.chains > 0 and report.surfaces > 0


def test_verified_flow_builds_golden_bundle():
    """``verify=True`` through the pipeline neither raises nor alters
    the artifact."""
    bundle = generate_baremetal(
        lenet5(), NV_SMALL, precision=Precision.INT8, verify=True
    )
    baseline = generate_baremetal(lenet5(), NV_SMALL, precision=Precision.INT8)
    assert bundle.artifact_digest() == baseline.artifact_digest()
