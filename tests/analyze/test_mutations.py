"""Each modeled miscompile class must be caught by its expected pass.

The injected mutations are the benchmark suite's (single source of
truth in :mod:`benchmarks.bench_analyze`); here each class runs as its
own test case so a regression names the exact class it dropped.
"""

from __future__ import annotations

import pytest

from repro.nn.zoo import ZOO
from repro.nvdla import NV_SMALL
from repro.nvdla.programming import build_chains
from repro.analyze import analyze_chains
from repro.compiler import CompileOptions, compile_network

from benchmarks.bench_analyze import MUTATIONS, mutate_chain_write


@pytest.fixture(scope="module")
def lenet_loadable():
    return compile_network(ZOO["lenet5"](), NV_SMALL, CompileOptions())


@pytest.mark.parametrize("mutation", MUTATIONS, ids=lambda m: m.name)
def test_mutation_is_detected_by_expected_pass(lenet_loadable, mutation):
    loadable = lenet_loadable
    if mutation.swap_schedule:
        ops = loadable.schedule.ops
        ops[0], ops[1] = ops[1], ops[0]
        try:
            chains = build_chains(loadable, NV_SMALL)
            report = analyze_chains(chains, loadable, NV_SMALL)
        finally:
            ops[0], ops[1] = ops[1], ops[0]
    else:
        fn = mutation.fn
        if mutation.name == "cbuf-overbudget":
            fn = lambda v: NV_SMALL.cbuf_banks  # noqa: E731
        chains = mutate_chain_write(
            build_chains(loadable, NV_SMALL), mutation.unit, mutation.register, fn
        )
        report = analyze_chains(chains, loadable, NV_SMALL)
    assert not report.clean, f"{mutation.name} went undetected"
    error_passes = {d.pass_id for d in report.errors}
    assert mutation.expected_passes & error_passes, (
        f"{mutation.name}: expected one of {sorted(mutation.expected_passes)} "
        f"to claim the catch, got {sorted(error_passes)}"
    )


def test_mutation_catalog_covers_issue_floor():
    # The sanitizer contract: at least six distinct miscompile classes.
    assert len(MUTATIONS) >= 6
    assert len({m.name for m in MUTATIONS}) == len(MUTATIONS)
