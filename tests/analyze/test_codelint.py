"""Determinism codelint: forbidden calls, allowlists, repo hygiene."""

from __future__ import annotations

from pathlib import Path

from repro.analyze.codelint import (
    DEFAULT_TARGETS,
    lint_repo,
    scan_source,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _codes(source: str, **kw) -> list[str]:
    return [v.code for v in scan_source(source, **kw)]


def test_wall_clock_calls_flagged():
    assert _codes("import time\nx = time.time()\n") == ["wall-clock"]
    assert _codes("import time\nx = time.perf_counter_ns()\n") == ["wall-clock"]
    assert _codes(
        "from datetime import datetime\nx = datetime.now()\n"
    ) == ["wall-clock"]


def test_unseeded_randomness_flagged():
    assert _codes("import random\nx = random.random()\n") == ["unseeded-random"]
    assert _codes("import random\nr = random.Random()\n") == ["unseeded-random"]
    assert _codes(
        "import numpy as np\nx = np.random.normal(0, 1)\n"
    ) == ["unseeded-random"]
    assert _codes(
        "from numpy.random import default_rng\nr = default_rng()\n"
    ) == ["unseeded-random"]


def test_seeded_randomness_allowed():
    assert _codes("import random\nr = random.Random(42)\n") == []
    assert _codes(
        "from numpy.random import default_rng\nr = default_rng(7)\n"
    ) == []
    assert _codes("import time\nx = time.sleep(1)\n") == []


def test_inline_marker_exempts_the_line():
    source = (
        "import time\n"
        "stamp = time.time()  # wall-clock: operator-facing log timestamp\n"
    )
    assert _codes(source) == []


def test_central_allowlist_exempts_by_path_and_name():
    source = "import time\nx = time.time()\n"
    assert _codes(source, path="a.py", allow={"a.py:time.time"}) == []
    assert _codes(source, path="a.py", allow={"b.py:time.time"}) == ["wall-clock"]


def test_syntax_error_is_a_violation_not_a_crash():
    violations = scan_source("def broken(:\n", path="bad.py")
    assert [v.code for v in violations] == ["syntax-error"]
    assert "bad.py" in violations[0].render()


def test_violation_render_is_clickable():
    violation = scan_source("import time\nx = time.time()\n", path="vp/clock.py")[0]
    assert violation.render().startswith("vp/clock.py:2:")
    assert "[wall-clock]" in violation.render()


def test_repo_virtual_clock_modules_are_clean():
    """The CI contract: cluster/, vp/ and the scheduler never consult
    the host wall clock or unseeded RNG state."""
    violations = lint_repo(REPO_ROOT)
    assert not violations, "\n".join(v.render() for v in violations)


def test_default_targets_exist():
    for target in DEFAULT_TARGETS:
        assert (REPO_ROOT / target).exists(), target
