"""FastPathExecutor unit behaviour: guard, estimates, stats accounting.

The output/cycle fidelity of the fast tier is gated by the differential
suite (`tests/nvdla/test_fastpath_differential.py`); this module covers
the machinery around it — the calibration guard, table persistence,
estimate determinism, the ``execute_bundle`` dispatch and the
active/skipped cycle partition of :class:`RunStats`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baremetal import execute_bundle, generate_baremetal
from repro.core import (
    CalibrationTable,
    FastPathExecutor,
    OverheadParams,
    Soc,
    calibrate,
)
from repro.core.calibration import Observation, fit_overheads
from repro.errors import ReproError
from repro.nn.zoo import lenet5
from repro.nvdla import NV_SMALL
from repro.serve.cache import BundleCache


@pytest.fixture(scope="module")
def cache():
    return BundleCache()


@pytest.fixture(scope="module")
def lenet_bundle(cache):
    return cache.bundle_for("lenet5", "nv_small")


@pytest.fixture(scope="module")
def table(cache):
    return calibrate(("lenet5",), NV_SMALL, cache=cache)


def test_uncalibrated_fast_run_is_refused(lenet_bundle):
    executor = FastPathExecutor(NV_SMALL)
    with pytest.raises(ReproError, match="CalibrationTable"):
        executor.run(lenet_bundle)
    # A table that exists but never validated this pair refuses too.
    executor = FastPathExecutor(NV_SMALL, calibration=CalibrationTable())
    with pytest.raises(ReproError, match="never calibrated"):
        executor.run(lenet_bundle)


def test_calibrated_pair_unlocks_fast_mode(lenet_bundle, table):
    executor = FastPathExecutor(NV_SMALL, calibration=table)
    result = executor.run(lenet_bundle)
    assert result.ok
    assert result.output is not None
    assert result.cycles == table.entry("lenet5", "nv_small", "int8").estimated_cycles


def test_estimate_is_deterministic_and_unguarded(lenet_bundle):
    executor = FastPathExecutor(NV_SMALL)  # no calibration on purpose
    first = executor.estimate(lenet_bundle)
    second = executor.estimate(lenet_bundle)
    assert first.total_cycles == second.total_cycles
    assert first.op_cycles == second.op_cycles
    assert [t.total for t in first.timings] == [t.total for t in second.timings]
    assert first.csb_writes + first.polls == len(lenet_bundle.commands)
    assert first.total_cycles == first.op_cycles + first.programming_cycles


def test_estimate_matches_engine_op_latencies(lenet_bundle, table):
    """Per-op fast-path totals equal the cycle-accurate OpRecords."""
    soc = Soc(NV_SMALL)
    soc.load_bundle(lenet_bundle)
    reference = soc.run_inference(lenet_bundle)
    executor = FastPathExecutor(NV_SMALL, calibration=table)
    estimate = executor.estimate(lenet_bundle)
    assert [t.total for t in estimate.timings] == [
        r.timing.total for r in reference.op_records
    ]


def test_wrong_config_is_refused(lenet_bundle):
    from repro.nvdla import NV_FULL

    own_table = CalibrationTable()
    own_table.admit("lenet5", "nv_small", "int8", 1, 1)  # guard passes, config must not
    executor = FastPathExecutor(NV_FULL, calibration=own_table)
    with pytest.raises(ReproError, match="built for"):
        executor.run(lenet_bundle)


def test_memory_width_mismatch_is_refused(lenet_bundle, table):
    """A pair validated at 32 bits must not unlock a 64-bit executor —
    DMA pricing (and therefore the estimate) changes with the width."""
    executor = FastPathExecutor(NV_SMALL, calibration=table, memory_bus_width_bits=64)
    with pytest.raises(ReproError, match="never"):
        executor.run(lenet_bundle)


def test_calibration_merge_revalidates_under_new_params(table):
    old = CalibrationTable(OverheadParams(1e6, 1e3, 1e3))  # absurd old fit
    # Carries terms and stays in band once recomputed with table.params.
    old.admit(
        "resnet50", "nv_small", "int8", 1_000_000, 99_000_000,
        op_cycles=1_000_000, csb_writes=10, polls=2,
    )
    # Carries terms but is hopeless under any params: dropped.
    old.admit(
        "googlenet", "nv_small", "int8", 10_000_000, 10_000_000,
        op_cycles=100, csb_writes=1, polls=1,
    )
    # No terms (legacy table): cannot be re-validated, dropped.
    old.admit("alexnet", "nv_small", "int8", 1000, 1000)
    # Collides with the fresh table: the fresh entry wins.
    old.admit("lenet5", "nv_small", "int8", 5, 5, op_cycles=5)
    merged = CalibrationTable(table.params)
    for key, entry in table.entries.items():
        merged.entries[key] = entry
    merged.merge(old)
    resnet50 = merged.entry("resnet50", "nv_small", "int8")
    assert resnet50.within(0.10)  # estimate recomputed, not the stale 99M
    assert resnet50.estimated_cycles != 99_000_000
    assert not merged.has("googlenet", "nv_small", "int8")
    assert not merged.has("alexnet", "nv_small", "int8")
    assert merged.entry("lenet5", "nv_small", "int8").measured_cycles != 5


def test_calibration_table_round_trips(tmp_path, table):
    path = table.save(tmp_path / "cal.json")
    loaded = CalibrationTable.load(path)
    assert loaded.params == table.params
    assert loaded.entries == table.entries
    entry = loaded.entry("lenet5", "nv_small", "int8")
    assert entry.within(0.10)


def test_fit_overheads_reproduces_exact_linear_data():
    params = OverheadParams(
        fixed_cycles=500.0, cycles_per_csb_write=12.0, cycles_per_poll=40.0
    )
    observations = [
        Observation("a", "c", "int8", 1000, w, p, 1000 + params.programming_cycles(w, p))
        for w, p in ((100, 10), (400, 25), (900, 60), (2000, 140))
    ]
    fitted = fit_overheads(observations)
    assert fitted.fixed_cycles == pytest.approx(params.fixed_cycles, rel=1e-6)
    assert fitted.cycles_per_csb_write == pytest.approx(12.0, rel=1e-6)
    assert fitted.cycles_per_poll == pytest.approx(40.0, rel=1e-6)
    with pytest.raises(ReproError):
        fit_overheads([])


def test_execute_bundle_dispatches_both_tiers(lenet_bundle, table, rng):
    image = rng.uniform(-1, 1, size=(1, 28, 28)).astype(np.float32)
    reference = execute_bundle(lenet_bundle, "cycle_accurate", input_image=image)
    fast = execute_bundle(lenet_bundle, "fast", input_image=image, calibration=table)
    assert reference.ok and fast.ok
    assert np.array_equal(reference.output, fast.output)
    with pytest.raises(ReproError, match="unknown execution mode"):
        execute_bundle(lenet_bundle, "warp")


def test_run_stats_active_and_skipped_partition_cycles(lenet_bundle):
    """`poll_fraction` disambiguation: the two buckets are accumulated
    independently (per-instruction vs per-fast-forward) and must tile
    the total cycle count with no gap and no overlap."""
    soc = Soc(NV_SMALL)
    soc.load_bundle(lenet_bundle)
    result = soc.run_inference(lenet_bundle)
    stats = result.stats
    assert stats.fast_forwards > 0  # the run really did skip polls
    assert stats.active_cycles > 0 and stats.skipped_cycles > 0
    assert stats.active_cycles + stats.skipped_cycles == stats.cycles
    assert stats.poll_fraction == pytest.approx(stats.skipped_cycles / stats.cycles)


def test_fast_path_timing_fidelity_has_no_output(cache):
    bundle = cache.bundle_for("lenet5", "nv_small", fidelity="timing")
    table = calibrate(("lenet5",), NV_SMALL, fidelity="timing", cache=cache)
    executor = FastPathExecutor(NV_SMALL, calibration=table)
    result = executor.run(bundle)
    assert result.ok
    assert result.output is None
    assert result.cycles > 0


def test_fast_path_repeated_runs_are_bit_identical(tiny_net, rng):
    """Worker-style reuse (same executor, same bundle) must not drift."""
    bundle = generate_baremetal(tiny_net, NV_SMALL)
    soc = Soc(NV_SMALL)
    soc.load_bundle(bundle)
    measured = soc.run_inference(bundle)
    table = CalibrationTable()
    executor = FastPathExecutor(NV_SMALL, calibration=table)
    estimate = executor.estimate(bundle)
    table.admit(bundle.network, "nv_small", "int8", measured.cycles, estimate.total_cycles)
    image = rng.uniform(-1, 1, size=tiny_net.input_shape).astype(np.float32)
    first = executor.run(bundle, input_image=image)
    second = executor.run(bundle, input_image=image)
    assert np.array_equal(first.output, second.output)
    assert first.cycles == second.cycles
    # And a fresh executor agrees with the reused one.
    fresh = FastPathExecutor(NV_SMALL, calibration=table).run(bundle, input_image=image)
    assert np.array_equal(first.output, fresh.output)
