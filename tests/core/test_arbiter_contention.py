"""DRAM arbiter: contention between the core and NVDLA DMA."""

from __future__ import annotations

from repro.clock import Clock
from repro.core.arbiter import DramArbiter
from repro.mem import Dram, SparseMemory
from repro.nvdla.mcif import Mcif

from tests.conftest import DirectDbbPort


def _arbiter_with_contention(busy_from: int, busy_cycles: int):
    dram = Dram(size=1 << 20)
    arbiter = DramArbiter(dram, grant_penalty=4)
    clock = Clock()
    mcif = Mcif(DirectDbbPort(SparseMemory(1 << 16)))
    mcif.record_window(busy_from, busy_cycles, 4096, "read")
    arbiter.attach_contention_source(mcif, clock)
    return arbiter, clock


def test_cpu_pays_grant_penalty_during_dma():
    arbiter, clock = _arbiter_with_contention(busy_from=0, busy_cycles=100)
    clock.advance(50)  # inside the DMA window
    contended = arbiter.read(0x100).cycles
    clock.advance(100)  # window over
    free = arbiter.read(0x100).cycles
    assert contended >= free + arbiter.grant_penalty - 1
    assert arbiter.stats.contended_grants == 1
    assert arbiter.stats.cpu_stall_cycles == arbiter.grant_penalty


def test_no_penalty_without_contention_source():
    arbiter = DramArbiter(Dram(size=1 << 20))
    raw = Dram(size=1 << 20)  # fresh row-buffer state for a fair compare
    cycles = arbiter.read(0x100).cycles
    assert arbiter.stats.contended_grants == 0
    assert cycles == raw.read(0x100).cycles  # same timing as raw DRAM


def test_streams_counted_separately():
    dram = Dram(size=1 << 20)
    arbiter = DramArbiter(dram)
    arbiter.stream_write(0x0, b"\x01" * 256)
    data, _ = arbiter.stream_read(0x0, 256)
    assert data == b"\x01" * 256
    assert arbiter.stats.nvdla_streams == 2
    assert arbiter.stats.cpu_grants == 0


def test_stream_cycles_timing_only_moves_no_data():
    dram = Dram(size=1 << 20)
    arbiter = DramArbiter(dram)
    cycles = arbiter.stream_cycles(0x0, 4096)
    assert cycles > 0
    assert dram.stats.bytes_read == 0  # pure pricing


def test_functional_and_pricing_agree_on_order():
    """Bigger transfers must price higher through either path."""
    dram = Dram(size=1 << 20)
    arbiter = DramArbiter(dram)
    assert arbiter.stream_cycles(0, 64 * 1024) > arbiter.stream_cycles(0, 1024)
