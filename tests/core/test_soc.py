"""SoC-level tests: address map, arbiter, wrapper, executor, test system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baremetal import generate_baremetal
from repro.baremetal.codegen import MAGIC_DONE, MAGIC_FAIL
from repro.core import DEFAULT_MAP, Soc, TestSystem
from repro.core.address_map import DRAM_BASE, DRAM_SIZE, NVDLA_LIMIT
from repro.errors import BusError, CpuFault
from repro.nvdla import NV_SMALL
from repro.riscv import assemble


# ----------------------------------------------------------------------
# Address map.
# ----------------------------------------------------------------------


def test_address_map_matches_paper():
    assert DEFAULT_MAP.nvdla_base == 0x0
    assert DEFAULT_MAP.nvdla_limit == 0xFFFFF
    assert DEFAULT_MAP.dram_base == 0x100000
    assert DEFAULT_MAP.dram_limit == 0x200FFFFF
    assert DEFAULT_MAP.dram_size == 512 * 1024 * 1024


def test_address_map_description():
    assert "512 MiB" in DEFAULT_MAP.describe()


# ----------------------------------------------------------------------
# SoC construction and plumbing.
# ----------------------------------------------------------------------


@pytest.fixture
def soc():
    return Soc(NV_SMALL, frequency_hz=100e6)


def test_cpu_can_write_dram_through_system_bus(soc):
    program = assemble(
        f"""
        li t0, 0x{DRAM_BASE + 0x2000:08x}
        li t1, 0x12345678
        sw t1, 0(t0)
        lw a0, 0(t0)
        li a7, 93
        ecall
        """
    )
    soc.load_program(program)
    soc.executor.run()
    assert soc.cpu.exit_code == 0x12345678
    assert soc.dram.storage.read_u32(0x2000) == 0x12345678


def test_cpu_can_read_nvdla_version_register(soc):
    from repro.nvdla.units.glb import HW_VERSION_VALUE

    program = assemble(
        """
        li t0, 0x0
        lw a0, 0(t0)     # GLB HW_VERSION
        li a7, 93
        ecall
        """
    )
    soc.load_program(program)
    soc.executor.run()
    assert soc.cpu.regs[10] == HW_VERSION_VALUE


def test_access_above_dram_window_faults(soc):
    program = assemble("li t0, 0x30000000\nlw a0, 0(t0)\nebreak\n")
    soc.load_program(program)
    with pytest.raises(CpuFault):
        soc.executor.run()


def test_nvdla_register_write_costs_more_than_bram(soc):
    """The AHB→APB→CSB path must be slower than a plain ALU op."""
    program = assemble(
        """
        li t0, 0x0000B010
        li t1, 1
        nop
        ebreak
        """
    )
    soc.load_program(program)
    cycles_before = soc.cpu.cycles
    soc.executor.run()
    # Now with the store through the register path:
    program2 = assemble(
        """
        li t0, 0x0000B00C
        li t1, 0
        sw t1, 0(t0)
        ebreak
        """
    )
    soc2 = Soc(NV_SMALL)
    soc2.load_program(program2)
    soc2.executor.run()
    assert soc2.cpu.cycles > soc.cpu.cycles


def test_preload_and_describe(soc):
    soc.preload_dram(DRAM_BASE + 0x100, b"\x42")
    assert soc.dram.storage.read_u8(0x100) == 0x42
    assert "NVDLA" in soc.describe() or "nv_small" in soc.describe()


# ----------------------------------------------------------------------
# Full bare-metal inference on the SoC.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def lenet_bundle():
    from repro.nn.zoo import lenet5

    return generate_baremetal(lenet5(), NV_SMALL)


def test_lenet_inference_succeeds(lenet_bundle):
    soc = Soc(NV_SMALL)
    soc.load_bundle(lenet_bundle)
    result = soc.run_inference(lenet_bundle)
    assert result.ok
    assert result.status_word == MAGIC_DONE
    assert result.cycles > 100_000


def test_soc_output_matches_vp_bit_exactly(lenet_bundle):
    soc = Soc(NV_SMALL)
    soc.load_bundle(lenet_bundle)
    result = soc.run_inference(lenet_bundle)
    assert np.array_equal(result.output, lenet_bundle.vp_result.output)


def test_poll_fast_forward_dominates(lenet_bundle):
    soc = Soc(NV_SMALL)
    soc.load_bundle(lenet_bundle)
    result = soc.run_inference(lenet_bundle)
    assert result.stats.fast_forwards >= lenet_bundle.loadable.hw_op_count()
    assert result.stats.poll_fraction > 0.5  # NVDLA dominates, CPU waits


def test_mcycle_csr_consistent_with_clock(lenet_bundle):
    soc = Soc(NV_SMALL)
    soc.load_bundle(lenet_bundle)
    result = soc.run_inference(lenet_bundle)
    assert soc.cpu.cycles == soc.clock.now == result.cycles


def test_corrupted_program_reports_failure(lenet_bundle):
    """Flip an expected poll value: the self-check must hit FAIL."""
    from repro.baremetal import generate_assembly
    from repro.baremetal.codegen import CodegenOptions
    from repro.baremetal.config_file import ConfigCommand
    from repro.riscv import assemble as asm

    commands = list(lenet_bundle.commands)
    poll_index = next(
        i for i, c in enumerate(commands) if c.kind == "read_reg" and c.mask != 0xFFFFFFFF
    )
    bad = commands[poll_index]
    commands[poll_index] = ConfigCommand("read_reg", bad.address, 0xFFFF0000, 0xFFFF0000)
    assembly = generate_assembly(commands, options=CodegenOptions(poll_limit=100))
    program = asm(assembly)
    soc = Soc(NV_SMALL)
    soc.load_bundle(lenet_bundle)
    soc.load_program(program)
    result = soc.run_inference()
    assert not result.ok
    assert result.status_word == MAGIC_FAIL
    assert result.fail_index == poll_index
    assert result.fail_address == bad.address


def test_arbiter_sees_both_masters(lenet_bundle):
    soc = Soc(NV_SMALL)
    soc.load_bundle(lenet_bundle)
    soc.run_inference(lenet_bundle)
    assert soc.arbiter.stats.nvdla_streams > 0
    assert soc.arbiter.stats.cpu_grants > 0


def test_frequency_scales_seconds_not_cycles(lenet_bundle):
    fast = Soc(NV_SMALL, frequency_hz=200e6)
    fast.load_bundle(lenet_bundle)
    fast_result = fast.run_inference(lenet_bundle)
    slow = Soc(NV_SMALL, frequency_hz=100e6)
    slow.load_bundle(lenet_bundle)
    slow_result = slow.run_inference(lenet_bundle)
    assert fast_result.cycles == slow_result.cycles
    assert fast_result.seconds == pytest.approx(slow_result.seconds / 2)


def test_stats_summary_structure(lenet_bundle):
    soc = Soc(NV_SMALL)
    soc.load_bundle(lenet_bundle)
    soc.run_inference(lenet_bundle)
    summary = soc.stats_summary()
    assert summary["nvdla"]["ops"] == lenet_bundle.loadable.hw_op_count()
    assert summary["cpu"]["instructions"] > 0
    assert 0 <= summary["dram"]["row_hit_rate"] <= 1


# ----------------------------------------------------------------------
# The Fig. 4 test system.
# ----------------------------------------------------------------------


def test_test_system_full_experiment(lenet_bundle):
    system = TestSystem(Soc(NV_SMALL))
    result = system.run_experiment(lenet_bundle)
    assert result.ok
    assert system.preload_result is not None
    assert system.preload_result.bytes_loaded == sum(
        i.size for i in lenet_bundle.images.preload
    )
    assert system.smartconnect.selected == "soc"
    assert "preloaded" in system.describe()


def test_smartconnect_blocks_soc_during_preload(lenet_bundle):
    system = TestSystem(Soc(NV_SMALL))
    with pytest.raises(BusError):
        system.smartconnect.read(0x0, master="soc")


def test_preload_timing_scales_with_size(lenet_bundle):
    system = TestSystem(Soc(NV_SMALL))
    small = system.zynq.preload([(DRAM_BASE, b"\x00" * 1024)])
    large = system.zynq.preload([(DRAM_BASE, b"\x00" * (64 * 1024))])
    assert large.zynq_cycles > small.zynq_cycles
