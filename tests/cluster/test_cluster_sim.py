"""The fleet simulation end to end: the ISSUE's acceptance gates.

- cache-affinity routing beats round-robin on fleet warm hit rate and
  p99 at the same offered load (fixed seed);
- the autoscaler keeps the rejection rate inside the configured SLO on
  a bursty arrival trace that a static fleet cannot hold;
- with ``execute=True`` the fleet's outputs are bit-identical to one
  plain InferenceService serving the same request set, and the
  replicas' real FastPathExecutor warm-state LRUs advance in lockstep
  with the simulation's virtual mirror.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    AdmissionController,
    Autoscaler,
    BurstyArrivals,
    ClusterSimulation,
    PoissonArrivals,
    SloPolicy,
    generate_workload,
    make_router,
    offered_rps,
    residency_key,
)
from repro.errors import ReproError
from repro.serve import DeploymentSpec, InferenceService, shared_cache

SEED = 7
LENET = DeploymentSpec("lenet5")
RESNET = DeploymentSpec("resnet18")


@pytest.fixture(scope="module")
def cache():
    """The process-wide cache: bundle builds amortise across tests."""
    return shared_cache()


@pytest.fixture(scope="module")
def mixed_workload():
    return generate_workload(
        PoissonArrivals(100.0), [LENET, RESNET], 300, seed=SEED
    )


def _simulate(policy, workload, cache, **kwargs):
    defaults = dict(replicas=2, resident_capacity=1, cache=cache)
    defaults.update(kwargs)
    return ClusterSimulation(make_router(policy), **defaults).run(workload)


# ----------------------------------------------------------------------
# Acceptance: routing policy comparison.
# ----------------------------------------------------------------------


def test_cache_affinity_beats_round_robin(cache, mixed_workload):
    affinity = _simulate("cache_affinity", mixed_workload, cache).metrics
    round_robin = _simulate("round_robin", mixed_workload, cache).metrics
    # Identical offered load: same seeded workload, nothing shed; the
    # metrics' estimator agrees with the workload helper's.
    assert affinity.arrivals == round_robin.arrivals == len(mixed_workload)
    assert affinity.offered_rps == pytest.approx(offered_rps(mixed_workload))
    assert affinity.offered_rps == pytest.approx(round_robin.offered_rps)
    # Higher fleet bundle hit rate...
    assert affinity.resident_hit_rate > round_robin.resident_hit_rate + 0.3
    # ...and a lower p99 at the same offered RPS.
    assert affinity.latency_summary().p99 < round_robin.latency_summary().p99
    # The thrash shows up as goodput, too.
    assert affinity.goodput_rps > round_robin.goodput_rps


def test_simulation_is_deterministic(cache, mixed_workload):
    first = _simulate("cache_affinity", mixed_workload, cache).metrics.to_dict()
    second = _simulate("cache_affinity", mixed_workload, cache).metrics.to_dict()
    assert first == second


def test_least_outstanding_balances_load(cache):
    """JSQ spreads a congested single-deployment stream fleet-wide.

    The offered load (~800 rps vs ~950 rps of warm fleet capacity)
    keeps queues non-empty, so join-shortest-queue has real signal;
    every replica must take a meaningful share of the traffic.
    """
    workload = generate_workload(PoissonArrivals(800.0), [LENET], 400, seed=3)
    result = _simulate(
        "least_outstanding", workload, cache, replicas=4, resident_capacity=2
    )
    spread = [usage.requests for usage in result.metrics.replica_usage]
    assert min(spread) >= len(workload) // 16
    assert max(spread) <= len(workload) // 2


# ----------------------------------------------------------------------
# Acceptance: SLO-aware autoscaling on a bursty trace.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def bursty_workload():
    return generate_workload(
        BurstyArrivals(100.0, 500.0, mean_calm_s=1.5, mean_burst_s=0.8),
        [LENET],
        600,
        seed=3,
    )


def _bursty_slo() -> SloPolicy:
    return SloPolicy(slo_latency_s=0.10, max_rejection_rate=0.05, max_queue_depth=24)


def test_autoscaler_keeps_rejection_inside_slo(cache, bursty_workload):
    slo = _bursty_slo()
    static = _simulate(
        "least_outstanding",
        bursty_workload,
        cache,
        replicas=1,
        resident_capacity=8,
        admission=AdmissionController(slo),
    ).metrics
    scaled = _simulate(
        "least_outstanding",
        bursty_workload,
        cache,
        replicas=1,
        resident_capacity=8,
        admission=AdmissionController(slo),
        autoscaler=Autoscaler(
            min_replicas=1,
            max_replicas=8,
            target_p99_s=0.06,
            evaluate_every_s=0.05,
            window_s=0.3,
            provision_delay_s=0.05,
            up_cooldown_s=0.05,
        ),
    ).metrics
    # The burst overruns a static single replica's rejection SLO...
    assert static.rejection_rate > slo.max_rejection_rate
    assert not static.meets_rejection_slo()
    # ...and the autoscaler absorbs the same trace inside it.
    assert scaled.meets_rejection_slo()
    assert scaled.rejection_rate < static.rejection_rate
    assert scaled.peak_replicas > 1
    # The timeline shows a real attack and a release.
    ups = [e for e in scaled.scale_events if e.to_replicas > e.from_replicas]
    downs = [e for e in scaled.scale_events if e.to_replicas < e.from_replicas]
    assert ups and downs
    # Scaled-up replicas came up cold: each paid its warm-up miss.
    used = [u for u in scaled.replica_usage if u.requests > 0]
    assert all(u.resident_misses >= 1 for u in used)


def test_autoscaler_fast_forwards_idle_gaps(cache):
    """A sparse trace (arrivals a virtual day apart) must not replay
    millions of no-op autoscaler ticks across the gap."""
    import time

    from repro.cluster import TimedRequest

    workload = [
        TimedRequest(0, 0.0, LENET),
        TimedRequest(1, 86_400.0, LENET),  # 1.7M ticks at 50 ms cadence
    ]
    simulation = ClusterSimulation(
        make_router("round_robin"),
        replicas=1,
        cache=cache,
        autoscaler=Autoscaler(min_replicas=1, max_replicas=4, evaluate_every_s=0.05),
    )
    began = time.perf_counter()
    result = simulation.run(workload)
    assert time.perf_counter() - began < 20.0
    assert result.metrics.completed == 2
    assert result.metrics.peak_replicas == 1


def test_scale_up_pays_cold_start(cache):
    """A replica provisioned mid-run starts with an empty warm LRU."""
    workload = generate_workload(PoissonArrivals(300.0), [LENET], 200, seed=5)
    scaled = _simulate(
        "least_outstanding",
        workload,
        cache,
        replicas=1,
        resident_capacity=8,
        autoscaler=Autoscaler(
            min_replicas=1,
            max_replicas=4,
            target_p99_s=0.02,
            evaluate_every_s=0.05,
            window_s=0.2,
            provision_delay_s=0.05,
            up_cooldown_s=0.05,
        ),
    ).metrics
    late = [u for u in scaled.replica_usage if u.came_up_at > 0 and u.requests > 0]
    assert late, "the overload must have forced a scale-up that took traffic"
    assert all(u.resident_misses >= 1 for u in late)


# ----------------------------------------------------------------------
# Acceptance: bit-identity and warm-state lockstep under execution.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def lenet_calibration(cache):
    from repro.core import calibrate

    return calibrate(("lenet5",), cache=cache)


def test_fleet_outputs_bit_identical_to_single_service(cache, lenet_calibration):
    fast = DeploymentSpec("lenet5", execution_mode="fast")
    workload = generate_workload(
        PoissonArrivals(100.0), [fast], 8, seed=11, with_inputs=True
    )
    fleet = ClusterSimulation(
        make_router("cache_affinity"),
        replicas=2,
        cache=cache,
        calibration=lenet_calibration,
        execute=True,
    ).run(workload)
    assert set(fleet.responses) == {r.request_id for r in workload}
    assert all(response.ok for response in fleet.responses.values())

    single = InferenceService(cache=cache, calibration=lenet_calibration)
    for request in workload:
        single.request(request.deployment, request.input_image)
    singles = sorted(single.run_pending(), key=lambda r: r.request_id)
    # generate_workload ids run 0..n-1 in arrival order, matching the
    # single service's own id assignment for the same submit order.
    for index, request in enumerate(workload):
        fleet_response = fleet.responses[request.request_id]
        assert fleet_response.output is not None
        assert np.array_equal(fleet_response.output, singles[index].output)
        assert fleet_response.cycles == singles[index].cycles
    # Host-side ServiceMetrics were aggregated into the fleet report.
    aggregate = fleet.metrics.service_aggregate
    assert aggregate is not None
    assert aggregate["requests"] == len(workload)
    assert aggregate["failures"] == 0


def _assert_lockstep(result):
    """Virtual warm-state mirror == the executors' real ResidentStats."""
    executed = [replica for replica in result.replicas if replica.executed]
    assert executed
    fleet_hits = 0
    for replica in executed:
        workers = replica.service.pool.all_workers()
        hits = sum(w.executor.resident_stats.hits for w in workers)
        misses = sum(w.executor.resident_stats.misses for w in workers)
        assert hits == replica.resident_hits
        assert misses == replica.resident_misses
        fleet_hits += hits
    assert result.metrics.resident_hits == fleet_hits
    return executed


def test_executor_warm_state_matches_virtual_mirror(cache, lenet_calibration):
    """The simulation's warm-state LRU and the real FastPathExecutor
    resident-state LRU advance in lockstep (same keys, same capacity,
    same order), so virtual warm-up pricing reflects real residency."""
    fast = DeploymentSpec("lenet5", execution_mode="fast")
    workload = generate_workload(
        PoissonArrivals(100.0), [fast], 10, seed=13, with_inputs=True
    )
    result = ClusterSimulation(
        make_router("round_robin"),
        replicas=2,
        cache=cache,
        calibration=lenet_calibration,
        resident_capacity=1,
        execute=True,
    ).run(workload)
    for replica in _assert_lockstep(result):
        workers = replica.service.pool.all_workers()
        assert len(workers) == 1
        assert workers[0].executor.max_resident_bundles == 1


def test_warm_state_mirror_is_per_hardware_lane(cache, lenet_calibration):
    """A replica serving two hardware points holds one executor — and
    one warm-state LRU — per lane; the virtual mirror must match that
    shape, not flatten both lanes into one thrashing LRU."""
    lanes = [
        DeploymentSpec("lenet5", execution_mode="fast"),
        DeploymentSpec("lenet5", execution_mode="fast", frequency_hz=50e6),
    ]
    workload = generate_workload(
        PoissonArrivals(100.0), lanes, 12, seed=17, with_inputs=True
    )
    assert {r.deployment for r in workload} == set(lanes)  # both lanes hit
    result = ClusterSimulation(
        make_router("round_robin"),
        replicas=1,
        cache=cache,
        calibration=lenet_calibration,
        resident_capacity=1,
        execute=True,
    ).run(workload)
    replica = _assert_lockstep(result)[0]
    assert len(replica.service.pool.all_workers()) == 2
    # One cold miss per lane, every later request warm — interleaving
    # the lanes must not evict across them.
    assert replica.resident_misses == 2
    assert replica.resident_hits == len(workload) - 2


def test_empty_workload_rejected(cache):
    with pytest.raises(ReproError):
        ClusterSimulation(make_router("round_robin"), cache=cache).run([])
