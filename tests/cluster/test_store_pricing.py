"""Store-aware artifact acquisition in the fleet simulation.

A cold replica's first touch of a deployment now pays a virtual-time
acquisition cost: a *build* (compile from scratch, then publish) when
the artifact is not in the store, a much cheaper *fetch* when it is.
These tests pin the pricing model itself, the legacy behaviour
(without a store the simulation is bit-identical to before), and the
tentpole's cluster gate — warming the store ahead of an autoscale
burst measurably lowers tail latency versus an empty store.
"""

from __future__ import annotations

import pytest

from repro.baremetal.pipeline import bundle_cache_key
from repro.cluster import (
    Autoscaler,
    BurstyArrivals,
    ClusterSimulation,
    ServiceTimeModel,
    generate_workload,
    make_router,
)
from repro.errors import ReproError
from repro.nvdla import Precision
from repro.serve import BundleCache, DeploymentSpec, shared_cache
from repro.store import BundleStore

SEED = 11
LENET_TIMING = DeploymentSpec("lenet5", fidelity="timing")
LENET = DeploymentSpec("lenet5")


def _bursty_workload(n=200, seed=SEED):
    return generate_workload(BurstyArrivals(80.0, 400.0), [LENET], n, seed=seed)


def _autoscaled(store, workload):
    cache = BundleCache(store=store) if store is not None else shared_cache()
    sim = ClusterSimulation(
        make_router("least_outstanding"),
        replicas=1,
        cache=cache,
        store=store,
        autoscaler=Autoscaler(
            min_replicas=1,
            max_replicas=6,
            target_p99_s=0.06,
            evaluate_every_s=0.05,
            window_s=0.3,
            provision_delay_s=0.05,
            up_cooldown_s=0.05,
        ),
    )
    return sim.run(workload)


def test_costs_carry_no_store_terms_without_a_store():
    pricing = ServiceTimeModel(cache=shared_cache())
    cost = pricing.costs(LENET_TIMING)
    assert cost.build_seconds == 0.0
    assert cost.fetch_seconds == 0.0


def test_fetch_is_much_cheaper_than_build(tmp_path):
    store = BundleStore(tmp_path / "store")
    pricing = ServiceTimeModel(cache=BundleCache(store=store), store=store)
    cost = pricing.costs(LENET_TIMING)
    assert cost.build_seconds > 0.0
    assert cost.fetch_seconds > 0.0
    # ~MB artifact: 250 ms + bytes/4 MiB/s vs 2 ms + bytes/128 MiB/s.
    assert cost.build_seconds > 10 * cost.fetch_seconds
    # Pricing a store-backed deployment published it (the pricing probe
    # compiles through the cache, which writes through).
    assert len(store) == 1


def test_bandwidths_must_be_positive():
    with pytest.raises(ReproError):
        ServiceTimeModel(cache=shared_cache(), build_bytes_per_s=0.0)
    with pytest.raises(ReproError):
        ServiceTimeModel(cache=shared_cache(), fetch_bytes_per_s=-1.0)


def test_storeless_simulation_unchanged():
    """The legacy path is bit-identical: attaching *no* store must not
    perturb a single latency sample."""
    workload = _bursty_workload()
    cache = shared_cache()

    def run():
        sim = ClusterSimulation(
            make_router("least_outstanding"), replicas=2, cache=cache
        )
        return sim.run(workload).metrics.to_dict()

    assert run() == run()


def test_first_touch_pays_once_per_replica(tmp_path):
    store = BundleStore(tmp_path / "store")
    workload = _bursty_workload(n=80)
    sim = ClusterSimulation(
        make_router("least_outstanding"),
        replicas=2,
        cache=BundleCache(store=store),
        store=store,
    )
    result = sim.run(workload)
    assert result.metrics.completed > 0
    # Both replicas acquired the one deployment exactly once each.
    acquired = [len(replica.acquired) for replica in result.replicas]
    assert acquired == [1, 1]


def test_warm_store_beats_empty_store_on_cold_start_p99(tmp_path):
    """The cluster acceptance gate: pre-warming the store turns every
    cold replica's first touch from a build into a fetch, and the
    bursty autoscale scenario's p99 drops accordingly."""
    workload = _bursty_workload()

    empty = _autoscaled(BundleStore(tmp_path / "empty"), workload)

    warm_store = BundleStore(tmp_path / "warm")
    warm_store.put_bundle(
        bundle_cache_key("lenet5", "nv_small", Precision.INT8, "functional"),
        shared_cache().bundle_for("lenet5", "nv_small"),
    )
    warm = _autoscaled(warm_store, workload)

    empty_p99 = empty.metrics.latency_summary().p99
    warm_p99 = warm.metrics.latency_summary().p99
    assert warm_p99 < empty_p99
    # Scale-up events record how many artifacts the store could warm.
    ups = [e for e in warm.metrics.scale_events if e.warmed_bundles]
    assert ups and all(e.warmed_bundles == 1 for e in ups)
    # The empty store starts with nothing published, so the very first
    # acquisition was a build — visible as a longer max service time.
    assert empty.metrics.latency_summary().max > warm.metrics.latency_summary().max
