"""Routing policies over a hand-built fleet (no simulation loop)."""

from __future__ import annotations

import pytest

from repro.cluster import (
    Replica,
    TimedRequest,
    affinity_score,
    make_router,
)
from repro.errors import ReproError
from repro.serve import DeploymentSpec

LENET = DeploymentSpec("lenet5")
RESNET = DeploymentSpec("resnet18")


def _fleet(n: int) -> list[Replica]:
    return [Replica(i) for i in range(n)]


def _request(deployment=LENET, request_id=0) -> TimedRequest:
    return TimedRequest(request_id, 0.0, deployment)


def test_round_robin_cycles_in_dispatch_order():
    router = make_router("round_robin")
    fleet = _fleet(3)
    picks = [router.route(_request(), fleet, 0.0).replica_id for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
    router.reset()
    assert router.route(_request(), fleet, 0.0).replica_id == 0


def test_least_outstanding_picks_emptiest():
    router = make_router("least_outstanding")
    fleet = _fleet(3)
    fleet[0].assign(0.0, 1.0)
    fleet[0].assign(0.0, 1.0)
    fleet[1].assign(0.0, 1.0)
    assert router.route(_request(), fleet, 0.0).replica_id == 2
    # Ties break by backlog, then id: after 2 also takes one request,
    # replica 1 (one outstanding, less backlog than 0) wins.
    fleet[2].assign(0.0, 1.0)
    fleet[2].assign(0.0, 1.0)
    assert router.route(_request(), fleet, 0.0).replica_id == 1


def test_least_outstanding_sees_virtual_completions():
    router = make_router("least_outstanding")
    fleet = _fleet(2)
    fleet[0].assign(0.0, 0.5)  # busy until t=0.5
    assert fleet[0].outstanding(0.1) == 1
    # After completion the replica is empty again and wins ties by id.
    assert fleet[0].outstanding(0.6) == 0
    assert router.route(_request(), fleet, 0.6).replica_id == 0


def test_cache_affinity_is_sticky_per_deployment():
    router = make_router("cache_affinity")
    fleet = _fleet(4)
    lenet_picks = {router.route(_request(LENET), fleet, 0.0).replica_id for _ in range(8)}
    resnet_picks = {router.route(_request(RESNET), fleet, 0.0).replica_id for _ in range(8)}
    assert len(lenet_picks) == 1
    assert len(resnet_picks) == 1


def test_cache_affinity_rendezvous_remaps_minimally():
    """Growing the fleet must not reshuffle keys away from survivors."""
    router = make_router("cache_affinity")
    deployments = [
        DeploymentSpec("lenet5", frequency_hz=1e6 * f) for f in range(1, 33)
    ]
    small = _fleet(4)
    large = small + [Replica(4)]
    moved = 0
    for deployment in deployments:
        before = router.route(_request(deployment), small, 0.0).replica_id
        after = router.route(_request(deployment), large, 0.0).replica_id
        if after != before:
            moved += 1
            assert after == 4  # keys only ever move to the new replica
    # Expected move fraction is 1/5; allow generous slack either side.
    assert moved <= len(deployments) // 2


def test_cache_affinity_spill_overflows_to_next_preference():
    router = make_router("cache_affinity", spill_depth=2)
    fleet = _fleet(3)
    owner = router.route(_request(LENET), fleet, 0.0)
    owner.assign(0.0, 1.0)
    owner.assign(0.0, 1.0)  # owner saturated at spill depth
    spilled = router.route(_request(LENET), fleet, 0.0)
    assert spilled.replica_id != owner.replica_id
    # The spill target is the *second* rendezvous preference, stably.
    again = router.route(_request(LENET), fleet, 0.0)
    assert again.replica_id == spilled.replica_id


def test_affinity_score_is_deterministic():
    assert affinity_score("lenet5/nv_small/int8@100MHz", 3) == affinity_score(
        "lenet5/nv_small/int8@100MHz", 3
    )
    assert affinity_score("a", 0) != affinity_score("a", 1)


def test_unknown_policy_and_bad_spill():
    with pytest.raises(ReproError):
        make_router("random")
    with pytest.raises(ReproError):
        make_router("cache_affinity", spill_depth=0)
