"""Admission control: queue-depth and latency-budget shedding."""

from __future__ import annotations

import pytest

from repro.cluster import (
    AdmissionController,
    Replica,
    SloPolicy,
    TimedRequest,
)
from repro.errors import ReproError
from repro.serve import DeploymentSpec

LENET = DeploymentSpec("lenet5")


def _request() -> TimedRequest:
    return TimedRequest(0, 0.0, LENET)


def test_admits_when_fleet_has_room():
    controller = AdmissionController(SloPolicy(max_queue_depth=2))
    fleet = [Replica(0), Replica(1)]
    decision = controller.admit(_request(), fleet, 0.0, run_seconds=0.01)
    assert decision.admitted and decision.reason is None


def test_rejects_when_every_replica_is_saturated():
    controller = AdmissionController(SloPolicy(max_queue_depth=2))
    fleet = [Replica(0), Replica(1)]
    for replica in fleet:
        replica.assign(0.0, 1.0)
        replica.assign(0.0, 1.0)
    decision = controller.admit(_request(), fleet, 0.0, run_seconds=0.01)
    assert not decision.admitted and decision.reason == "queue_full"
    # One replica with room is enough to admit again.
    fleet.append(Replica(2))
    assert controller.admit(_request(), fleet, 0.0, run_seconds=0.01).admitted


def test_queue_depth_drains_with_virtual_time():
    controller = AdmissionController(SloPolicy(max_queue_depth=1))
    replica = Replica(0)
    replica.assign(0.0, 0.5)
    assert not controller.admit(_request(), [replica], 0.1, run_seconds=0.01).admitted
    # After the in-flight request completes, admission reopens.
    assert controller.admit(_request(), [replica], 0.6, run_seconds=0.01).admitted


def test_latency_budget_shedding():
    policy = SloPolicy(max_queue_depth=None, latency_budget_s=0.1)
    controller = AdmissionController(policy)
    replica = Replica(0)
    assert controller.admit(_request(), [replica], 0.0, run_seconds=0.05).admitted
    # Even the emptiest replica cannot finish a 0.2 s request in budget.
    decision = controller.admit(_request(), [replica], 0.0, run_seconds=0.2)
    assert not decision.admitted and decision.reason == "latency_budget"
    # Backlog counts toward the budget.
    replica.assign(0.0, 0.08)
    decision = controller.admit(_request(), [replica], 0.0, run_seconds=0.05)
    assert not decision.admitted and decision.reason == "latency_budget"


def test_empty_fleet_rejects():
    controller = AdmissionController()
    decision = controller.admit(_request(), [], 0.0, run_seconds=0.01)
    assert not decision.admitted and decision.reason == "no_replicas"


def test_policy_validation():
    with pytest.raises(ReproError):
        SloPolicy(slo_latency_s=0.0)
    with pytest.raises(ReproError):
        SloPolicy(max_rejection_rate=1.5)
    with pytest.raises(ReproError):
        SloPolicy(max_queue_depth=0)
    with pytest.raises(ReproError):
        SloPolicy(latency_budget_s=-1.0)
