"""Autoscaler decisions: attack, release, cooldowns, clamps."""

from __future__ import annotations

import pytest

from repro.cluster import Autoscaler, FleetSample
from repro.errors import ReproError


def _sample(now=10.0, live=2, p99=0.01, util=0.5, backlog=0.0) -> FleetSample:
    return FleetSample(
        now=now,
        live_replicas=live,
        p99_latency_s=p99,
        utilization=util,
        max_backlog_s=backlog,
    )


def _scaler(**kwargs) -> Autoscaler:
    defaults = dict(
        min_replicas=1,
        max_replicas=8,
        target_p99_s=0.1,
        target_utilization=0.75,
        scale_down_utilization=0.30,
        up_cooldown_s=0.1,
        down_cooldown_s=1.0,
    )
    defaults.update(kwargs)
    return Autoscaler(**defaults)


def test_holds_inside_the_envelope():
    scaler = _scaler()
    assert scaler.decide(_sample(p99=0.05, util=0.5)) is None


def test_scales_up_on_p99_breach():
    scaler = _scaler()
    decision = scaler.decide(_sample(p99=0.5, util=0.5))
    assert decision is not None and decision.desired == 3
    assert "p99" in decision.reason


def test_scales_up_proportionally_on_utilization():
    """The HPA rule jumps several replicas on a hard overload."""
    scaler = _scaler()
    decision = scaler.decide(_sample(live=2, p99=0.05, util=1.5))
    # ceil(2 * 1.5 / 0.75) = 4: one decision, two new replicas.
    assert decision is not None and decision.desired == 4
    assert "util" in decision.reason


def test_up_cooldown_blocks_immediate_rescale():
    scaler = _scaler(up_cooldown_s=1.0)
    assert scaler.decide(_sample(now=10.0, p99=0.5)) is not None
    assert scaler.decide(_sample(now=10.5, p99=0.5)) is None
    assert scaler.decide(_sample(now=11.1, p99=0.5)) is not None


def test_max_replicas_clamp():
    scaler = _scaler()
    decision = scaler.decide(_sample(live=8, p99=0.5, util=2.0))
    assert decision is None  # already at the ceiling
    decision = scaler.decide(_sample(now=20.0, live=7, util=4.0))
    assert decision is not None and decision.desired == 8


def test_scales_down_one_step_when_idle():
    scaler = _scaler()
    decision = scaler.decide(_sample(live=4, p99=0.01, util=0.1))
    assert decision is not None and decision.desired == 3
    assert "util" in decision.reason


def test_scale_down_respects_min_and_cooldown():
    scaler = _scaler()
    assert scaler.decide(_sample(live=1, util=0.0)) is None  # at the floor
    assert scaler.decide(_sample(now=10.0, live=4, util=0.1)).desired == 3
    # Release cooldown: the next decrement must wait.
    assert scaler.decide(_sample(now=10.5, live=3, util=0.1)) is None
    assert scaler.decide(_sample(now=11.1, live=3, util=0.1)) is not None


def test_no_flap_straight_after_attack():
    scaler = _scaler(down_cooldown_s=2.0)
    assert scaler.decide(_sample(now=10.0, p99=0.5)) is not None  # scaled up
    # Utilisation collapses right after — but releasing immediately
    # would flap, so the release waits out the down-cooldown.
    assert scaler.decide(_sample(now=11.0, live=3, util=0.05)) is None
    assert scaler.decide(_sample(now=12.1, live=3, util=0.05)) is not None


def test_reset_clears_cooldowns():
    scaler = _scaler(up_cooldown_s=100.0)
    assert scaler.decide(_sample(now=10.0, p99=0.5)) is not None
    assert scaler.decide(_sample(now=20.0, p99=0.5)) is None
    scaler.reset()
    assert scaler.decide(_sample(now=20.0, p99=0.5)) is not None


def test_validation():
    with pytest.raises(ReproError):
        Autoscaler(min_replicas=0)
    with pytest.raises(ReproError):
        Autoscaler(min_replicas=4, max_replicas=2)
    with pytest.raises(ReproError):
        Autoscaler(scale_down_utilization=0.9, target_utilization=0.7)
    with pytest.raises(ReproError):
        Autoscaler(evaluate_every_s=0.0)
