"""ClusterMetrics accounting and ServiceMetrics aggregation."""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ClusterMetrics,
    ScaleEvent,
    SloPolicy,
    aggregate_service_metrics,
)
from repro.serve.metrics import ServiceMetrics


def _metrics(slo=None) -> ClusterMetrics:
    return ClusterMetrics(slo=slo or SloPolicy(slo_latency_s=0.1))


def test_counts_and_rates():
    metrics = _metrics()
    metrics.arrival(0.0)
    metrics.complete(0.0, latency_s=0.05, resident_hit=False)
    metrics.arrival(0.5)
    metrics.complete(0.5, latency_s=0.20, resident_hit=True)  # SLO miss
    metrics.arrival(1.0)
    metrics.reject(1.0, "queue_full")
    assert metrics.arrivals == 3
    assert metrics.completed == 2
    assert metrics.rejected == 1
    assert metrics.rejections_by_reason == {"queue_full": 1}
    assert metrics.slo_met == 1
    assert metrics.resident_hits == 1 and metrics.resident_misses == 1
    assert metrics.rejection_rate == pytest.approx(1 / 3)
    assert metrics.resident_hit_rate == pytest.approx(0.5)
    # Span: first arrival 0.0 → last event (the rejected arrival, 1.0;
    # completions stop at 0.7).
    assert metrics.duration_s == pytest.approx(1.0)
    # Offered load is the gaps-based estimator: 3 arrivals = 2 gaps
    # over a 1.0 s arrival span.
    assert metrics.offered_rps == pytest.approx(2.0)
    assert metrics.goodput_rps == pytest.approx(1.0)


def test_meets_rejection_slo():
    metrics = _metrics(SloPolicy(max_rejection_rate=0.25))
    for index in range(4):
        metrics.arrival(float(index))
    metrics.reject(3.0, "queue_full")
    for _ in range(3):
        metrics.complete(0.0, 0.01, True)
    assert metrics.meets_rejection_slo()
    metrics.arrival(4.0)
    metrics.reject(4.0, "latency_budget")
    assert not metrics.meets_rejection_slo()
    assert metrics.rejections_by_reason == {"queue_full": 1, "latency_budget": 1}


def test_to_dict_and_render_are_json_clean():
    metrics = _metrics()
    metrics.arrival(0.0)
    metrics.complete(0.0, 0.01, True)
    metrics.scale_events.append(
        ScaleEvent(
            at_s=0.5,
            from_replicas=1,
            to_replicas=2,
            reason="p99 120ms > 100ms",
            p99_latency_s=0.12,
            utilization=0.9,
        )
    )
    payload = metrics.to_dict()
    text = json.dumps(payload)  # must be JSON-serialisable end to end
    assert "scale_events" in text
    assert payload["latency"]["count"] == 1
    assert payload["meets_rejection_slo"] is True
    rendered = metrics.render()
    assert "goodput" in rendered and "scale timeline" in rendered
    assert "p99" in rendered


def test_aggregate_service_metrics_pools_samples():
    """Fleet p99 must come from pooled samples, not averaged p99s."""
    a, b = ServiceMetrics(), ServiceMetrics()
    for value in (0.010, 0.011, 0.012):
        a.record(value, cycles=100, ok=True, deployment="d")
    b.record(0.500, cycles=900, ok=False, deployment="d")
    a.bundle_hits, a.bundle_misses = 3, 1
    b.bundle_misses = 1
    fleet = aggregate_service_metrics([a, b])
    assert fleet["replicas"] == 2
    assert fleet["requests"] == 4
    assert fleet["failures"] == 1
    assert fleet["bundle_hits"] == 3 and fleet["bundle_misses"] == 2
    # The slow replica's sample dominates the pooled tail.
    assert fleet["wall"]["p99"] == pytest.approx(0.500)
    assert fleet["wall"]["count"] == 4
    assert fleet["cycles"]["max"] == pytest.approx(900.0)
    json.dumps(fleet)


def test_aggregate_of_nothing():
    fleet = aggregate_service_metrics([])
    assert fleet["replicas"] == 0
    assert fleet["wall"]["count"] == 0
