"""Virtual-clock tracing of the fleet simulation.

Cluster spans live on the simulated timeline (explicit timestamps via
``Tracer.add``), one Perfetto lane per replica; rejections are recorded
as zero-duration spans with the reason, so a trace shows shed load next
to served load.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    AdmissionController,
    ClusterSimulation,
    PoissonArrivals,
    SloPolicy,
    generate_workload,
    make_router,
)
from repro.obs import Tracer, build_trees, to_chrome_trace
from repro.serve import DeploymentSpec, shared_cache

SEED = 7
LENET = DeploymentSpec("lenet5")


@pytest.fixture(scope="module")
def cache():
    return shared_cache()


def _run(workload, cache, **kwargs):
    tracer = Tracer(enabled=True, process=-1)
    defaults = dict(replicas=2, cache=cache, tracer=tracer)
    defaults.update(kwargs)
    simulation = ClusterSimulation(make_router("round_robin"), **defaults)
    return simulation.run(workload), tracer


def test_completed_requests_trace_on_the_virtual_clock(cache):
    workload = generate_workload(PoissonArrivals(50.0), [LENET], 40, seed=SEED)
    result, tracer = _run(workload, cache)
    metrics = result.metrics
    assert metrics.completed > 0

    spans = tracer.finished
    roots = [s for s in spans if s["name"] == "request"
             and "rejected" not in s["attrs"]]
    assert len(roots) == metrics.completed
    # Virtual timestamps: seconds from simulation start, not epoch.
    assert all(0.0 <= s["start_s"] < 1e4 for s in spans)
    # Trace ids carry the routing policy; lanes are replica ids.
    assert all(s["trace_id"].startswith("round_robin:req-") for s in roots)
    assert all(s["process"] >= 0 for s in roots)  # replica lanes, not plane
    # Every tree is single-rooted with a run child, and no orphans.
    for tree in build_trees(spans):
        assert len(tree.roots) == 1 and tree.orphans == []
        names = [n.name for _, n in tree.roots[0].walk()]
        assert "run" in names
    # The export keeps the replica lanes.
    chrome = to_chrome_trace(spans)
    pids = {e["pid"] for e in chrome["traceEvents"] if e["ph"] == "X"}
    assert pids == {s["process"] for s in spans}


def test_queue_wait_spans_appear_under_contention(cache):
    # One replica at overload: later arrivals must queue.
    workload = generate_workload(PoissonArrivals(400.0), [LENET], 60, seed=SEED)
    _, tracer = _run(workload, cache, replicas=1)
    waits = [s for s in tracer.finished if s["name"] == "queue.wait"]
    assert waits
    for wait in waits:
        assert wait["end_s"] > wait["start_s"]
        # The wait precedes its request's service window.
        assert wait["parent_id"] is not None


def test_rejections_become_zero_duration_spans(cache):
    slo = SloPolicy(slo_latency_s=0.05, max_rejection_rate=0.5, max_queue_depth=1)
    workload = generate_workload(PoissonArrivals(500.0), [LENET], 80, seed=SEED)
    result, tracer = _run(
        workload, cache, replicas=1, admission=AdmissionController(slo))
    metrics = result.metrics
    assert metrics.rejected > 0

    rejected = [s for s in tracer.finished
                if s["name"] == "request" and "rejected" in s["attrs"]]
    assert len(rejected) == metrics.rejected
    for span in rejected:
        assert span["start_s"] == span["end_s"]
        assert span["attrs"]["rejected"] in (
            "no_replicas", "queue_full", "latency_budget")


def test_disabled_tracer_fleet_records_nothing(cache):
    workload = generate_workload(PoissonArrivals(50.0), [LENET], 20, seed=SEED)
    simulation = ClusterSimulation(
        make_router("round_robin"), replicas=2, cache=cache)
    simulation.run(workload)
    assert len(simulation.tracer) == 0
