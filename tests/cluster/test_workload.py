"""Workload generation: seeded determinism, arrival shapes, traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    BurstyArrivals,
    ConstantArrivals,
    PoissonArrivals,
    generate_workload,
    load_trace,
    make_arrivals,
    offered_rps,
    save_trace,
)
from repro.errors import ReproError
from repro.serve import DeploymentSpec

LENET = DeploymentSpec("lenet5")
RESNET = DeploymentSpec("resnet18")


def test_same_seed_same_workload():
    for with_inputs in (False, True):
        first, second = (
            generate_workload(
                PoissonArrivals(50.0),
                [LENET, RESNET],
                24,
                seed=11,
                with_inputs=with_inputs,
            )
            for _ in range(2)
        )
        assert [r.arrival_s for r in first] == [r.arrival_s for r in second]
        assert [r.deployment for r in first] == [r.deployment for r in second]
        if with_inputs:
            for a, b in zip(first, second):
                assert np.array_equal(a.input_image, b.input_image)


def test_different_seed_different_workload():
    a = generate_workload(PoissonArrivals(50.0), [LENET], 16, seed=1)
    b = generate_workload(PoissonArrivals(50.0), [LENET], 16, seed=2)
    assert [r.arrival_s for r in a] != [r.arrival_s for r in b]


def test_constant_arrivals_evenly_spaced():
    workload = generate_workload(ConstantArrivals(100.0), [LENET], 10, seed=0)
    gaps = np.diff([r.arrival_s for r in workload])
    assert np.allclose(gaps, 0.01)
    assert offered_rps(workload) == pytest.approx(100.0)


def test_poisson_arrivals_hit_the_mean_rate():
    workload = generate_workload(PoissonArrivals(200.0), [LENET], 2000, seed=5)
    assert offered_rps(workload) == pytest.approx(200.0, rel=0.10)


def test_bursty_arrivals_have_two_regimes():
    """An MMPP trace must show genuinely different local rates."""
    arrivals = BurstyArrivals(50.0, 500.0, mean_calm_s=1.0, mean_burst_s=0.5)
    workload = generate_workload(arrivals, [LENET], 3000, seed=9)
    gaps = np.diff([r.arrival_s for r in workload])
    # Rolling local rate over 50-request windows.
    local_rates = 50.0 / np.convolve(gaps, np.ones(50), mode="valid")
    assert local_rates.min() < 100.0  # calm stretches near the base rate
    assert local_rates.max() > 250.0  # burst stretches well above it
    # Mean offered load sits strictly between the two state rates.
    assert 50.0 < offered_rps(workload) < 500.0


def test_weighted_mix():
    workload = generate_workload(
        ConstantArrivals(10.0), [LENET, RESNET], 400, seed=2, weights=[9, 1]
    )
    lenet_share = sum(r.deployment.model == "lenet5" for r in workload) / len(workload)
    assert lenet_share == pytest.approx(0.9, abs=0.05)


def test_workload_validation():
    with pytest.raises(ReproError):
        generate_workload(ConstantArrivals(10.0), [], 4)
    with pytest.raises(ReproError):
        generate_workload(ConstantArrivals(10.0), [LENET], 0)
    with pytest.raises(ReproError):
        generate_workload(ConstantArrivals(10.0), [LENET, RESNET], 4, weights=[1])
    with pytest.raises(ReproError):
        ConstantArrivals(0.0)
    with pytest.raises(ReproError):
        BurstyArrivals(100.0, 50.0)  # burst must exceed base
    with pytest.raises(ReproError):
        make_arrivals("weibull", 10.0)


def test_make_arrivals_registry():
    assert make_arrivals("constant", 5.0).name == "constant"
    assert make_arrivals("poisson", 5.0).name == "poisson"
    bursty = make_arrivals("bursty", 5.0)
    assert bursty.name == "bursty" and bursty.burst_rate == 20.0


def test_trace_round_trip(tmp_path):
    workload = generate_workload(
        PoissonArrivals(80.0),
        [LENET, DeploymentSpec("resnet18", fidelity="timing")],
        12,
        seed=4,
    )
    path = save_trace(workload, tmp_path / "trace.jsonl")
    replayed = load_trace(path)
    assert [r.arrival_s for r in replayed] == [r.arrival_s for r in workload]
    assert [r.deployment for r in replayed] == [r.deployment for r in workload]
    # Replay with inputs: deterministic from the (trace, seed) pair.
    with_inputs = load_trace(path, seed=7, with_inputs=True)
    again = load_trace(path, seed=7, with_inputs=True)
    for a, b in zip(with_inputs, again):
        assert np.array_equal(a.input_image, b.input_image)


def test_trace_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(ReproError):
        load_trace(bad)
    unsorted = tmp_path / "unsorted.jsonl"
    unsorted.write_text(
        '{"t": 1.0, "model": "lenet5"}\n{"t": 0.5, "model": "lenet5"}\n'
    )
    with pytest.raises(ReproError):
        load_trace(unsorted)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    with pytest.raises(ReproError):
        load_trace(empty)
