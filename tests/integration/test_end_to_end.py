"""End-to-end integration: model → flow → SoC, against the reference.

These are the tests that justify the reproduction: the *same tensors*
flow through the float reference, the VP functional model, and the
bare-metal SoC execution, and all three must agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baremetal import generate_baremetal
from repro.compiler import CompileOptions
from repro.core import Soc, TestSystem
from repro.nn import ReferenceExecutor
from repro.nn.zoo import lenet5, resnet18_cifar
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision


def _reference_blob(net, image, blob):
    executor = ReferenceExecutor(net)
    executor.run(image, record_blobs=True)
    return executor.blobs[blob]


@pytest.fixture(scope="module")
def lenet_flow():
    net = lenet5()
    rng = np.random.default_rng(2024)
    image = rng.uniform(-1, 1, net.input_shape).astype(np.float32)
    bundle = generate_baremetal(net, NV_SMALL, input_image=image)
    return net, image, bundle


def test_lenet_vp_vs_reference(lenet_flow):
    net, image, bundle = lenet_flow
    expected = _reference_blob(net, image, "ip2")
    got = bundle.vp_result.output
    scale = np.abs(expected).max()
    assert np.abs(got - expected).max() < 0.08 * scale + 1e-3


def test_lenet_soc_vs_vp_bit_exact(lenet_flow):
    _, _, bundle = lenet_flow
    soc = Soc(NV_SMALL)
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
    assert result.ok
    assert np.array_equal(result.output, bundle.vp_result.output)


def test_lenet_full_testsystem_matches(lenet_flow):
    _, _, bundle = lenet_flow
    system = TestSystem(Soc(NV_SMALL))
    result = system.run_experiment(bundle)
    assert result.ok
    assert np.array_equal(result.output, bundle.vp_result.output)


def test_lenet_latency_in_paper_regime(lenet_flow):
    """Table II row: 4.8 ms at 100 MHz; we accept the same order."""
    _, _, bundle = lenet_flow
    soc = Soc(NV_SMALL, frequency_hz=100e6)
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
    assert 1.0 <= result.milliseconds <= 15.0


@pytest.mark.slow
def test_resnet18_functional_flow():
    """The residual network end to end on the SoC (INT8)."""
    net = resnet18_cifar()
    rng = np.random.default_rng(7)
    image = rng.uniform(-1, 1, net.input_shape).astype(np.float32)
    bundle = generate_baremetal(net, NV_SMALL, input_image=image)
    soc = Soc(NV_SMALL)
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
    assert result.ok
    assert np.array_equal(result.output, bundle.vp_result.output)
    expected = _reference_blob(net, image, "fc")
    # Deep INT8 chains accumulate quantisation error; correlation must
    # stay high even when absolute values drift.
    correlation = np.corrcoef(result.output.flatten(), expected.flatten())[0, 1]
    assert correlation > 0.8


def test_tiny_net_fp16_on_nv_full(tiny_net):
    rng = np.random.default_rng(5)
    image = rng.uniform(-1, 1, tiny_net.input_shape).astype(np.float32)
    bundle = generate_baremetal(
        tiny_net,
        NV_FULL,
        precision=Precision.FP16,
        input_image=image,
        compile_options=CompileOptions(precision=Precision.FP16),
    )
    soc = Soc(NV_FULL)
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
    assert result.ok
    expected = _reference_blob(tiny_net, image, "fc1")
    assert np.allclose(result.output, expected, rtol=0.05, atol=0.05)
    assert int(np.argmax(result.output)) == int(np.argmax(expected))


def test_branchy_concat_network_end_to_end(branchy_net):
    """Zero-copy concat must produce the right numbers on silicon-path."""
    rng = np.random.default_rng(3)
    image = rng.uniform(-1, 1, branchy_net.input_shape).astype(np.float32)
    bundle = generate_baremetal(branchy_net, NV_SMALL, input_image=image)
    soc = Soc(NV_SMALL)
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
    assert result.ok
    expected = _reference_blob(branchy_net, image, "tail")
    scale = np.abs(expected).max()
    assert np.abs(result.output - expected).max() < 0.1 * scale + 1e-3


def test_residual_eltwise_network_end_to_end(residual_net):
    rng = np.random.default_rng(4)
    image = rng.uniform(-1, 1, residual_net.input_shape).astype(np.float32)
    bundle = generate_baremetal(residual_net, NV_SMALL, input_image=image)
    soc = Soc(NV_SMALL)
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
    assert result.ok
    expected = _reference_blob(residual_net, image, "fc")
    correlation = np.corrcoef(result.output.flatten(), expected.flatten())[0, 1]
    assert correlation > 0.9


def test_trace_config_program_sizes_consistent(lenet_flow):
    """Fig. 1 artefact chain: every stage's size follows the last."""
    _, _, bundle = lenet_flow
    assert len(bundle.commands) == len(bundle.trace.csb)
    writes = sum(1 for c in bundle.commands if c.kind == "write_reg")
    reads = len(bundle.commands) - writes
    # Program: >=3 words per write (li+sw), >=5 per read poll.
    assert len(bundle.program.words) >= writes * 2 + reads * 5


def test_config_file_replays_identically(lenet_flow):
    """Parsing the rendered config file must regenerate the commands."""
    from repro.baremetal import parse_config_file

    _, _, bundle = lenet_flow
    assert parse_config_file(bundle.config_file_text) == bundle.commands
