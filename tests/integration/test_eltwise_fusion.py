"""Numeric equivalence of fused vs materialised residual adds.

The INT8 ERDMA operand converter must keep the fused schedule's output
close to both the unfused schedule and the float reference — the
property that justified enabling the fusion for INT8.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import CompileOptions, compile_network
from repro.nn import ReferenceExecutor
from repro.nn.zoo import resnet18_cifar
from repro.nvdla import NV_SMALL
from repro.vp import NvdlaRuntime, VirtualPlatform


def _run_vp(net, loadable, image):
    platform = VirtualPlatform(NV_SMALL, trace=False)
    runtime = NvdlaRuntime(platform)
    runtime.deploy(loadable)
    runtime.set_input(image)
    return runtime.execute()


@pytest.fixture(scope="module")
def fused_vs_unfused(residual_net_module=None):
    from tests.conftest import DirectDbbPort  # noqa: F401  (fixture style parity)

    from repro.nn.graph import Network

    net = Network("residual_eq", seed=21)
    data = net.add_input("data", (8, 8, 8))
    conv1 = net.add_conv("conv1", data, num_output=8, kernel_size=3, pad=1)
    relu1 = net.add_relu("relu1", conv1)
    conv2 = net.add_conv("conv2", relu1, num_output=8, kernel_size=3, pad=1)
    added = net.add_eltwise("add", conv2, data)
    relu2 = net.add_relu("relu2", added)
    net.add_fc("fc", relu2, num_output=4)
    net.validate()

    rng = np.random.default_rng(17)
    image = rng.uniform(-1, 1, net.input_shape).astype(np.float32)
    fused = compile_network(net, NV_SMALL, CompileOptions(fuse_eltwise=True))
    unfused = compile_network(net, NV_SMALL, CompileOptions(fuse_eltwise=False))
    return net, image, _run_vp(net, fused, image), _run_vp(net, unfused, image), fused, unfused


def test_fusion_reduces_op_count(fused_vs_unfused):
    _, _, _, _, fused, unfused = fused_vs_unfused
    assert fused.hw_op_count() == unfused.hw_op_count() - 1


def test_fused_matches_unfused_numerically(fused_vs_unfused):
    _, _, fused_result, unfused_result, _, _ = fused_vs_unfused
    scale = np.abs(unfused_result.output).max() + 1e-9
    delta = np.abs(fused_result.output - unfused_result.output).max()
    # Only the ERDMA rounding differs between the two schedules.
    assert delta <= 0.06 * scale


def test_fused_matches_float_reference(fused_vs_unfused):
    net, image, fused_result, _, _, _ = fused_vs_unfused
    executor = ReferenceExecutor(net)
    executor.run(image, record_blobs=True)
    expected = executor.blobs["fc"]
    correlation = np.corrcoef(fused_result.output.flatten(), expected.flatten())[0, 1]
    assert correlation > 0.95


def test_fusion_saves_memory_traffic_on_resnet18():
    net = resnet18_cifar()
    fused = compile_network(net, NV_SMALL, CompileOptions(fuse_eltwise=True))
    unfused = compile_network(net, NV_SMALL, CompileOptions(fuse_eltwise=False))
    # 8 residual adds, plus the global-avg pool: with the adds
    # materialised the pool trails an SDP op and cannot chain into a
    # conv, so the ablated schedule keeps it standalone too.
    assert fused.hw_op_count() == unfused.hw_op_count() - 9
