"""Cross-cutting invariants checked over every zoo compilation.

These re-derive properties independently from the implementation (the
test computes its own liveness) so allocator or packer regressions
cannot hide behind their own bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.compiler import CompileOptions, compile_network
from repro.compiler.ops import ConvOp, CpuSoftmaxOp
from repro.nn.zoo import ZOO
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision

# Compiles five zoo networks up front — slow end-to-end tier.
pytestmark = pytest.mark.slow

_CASES = [
    ("lenet5", NV_SMALL, Precision.INT8),
    ("resnet18", NV_SMALL, Precision.INT8),
    ("mobilenet", NV_SMALL, Precision.INT8),
    ("googlenet", NV_FULL, Precision.FP16),
    ("alexnet", NV_FULL, Precision.FP16),
]


@pytest.fixture(scope="module")
def compiled():
    cache = {}
    for name, config, precision in _CASES:
        cache[(name, config.name)] = (
            compile_network(ZOO[name](), config, CompileOptions(precision=precision)),
            config,
        )
    return cache


def _blob_extents(loadable, config):
    """Blob -> (address, size) from the refs the ops actually use."""
    extents = {}
    atom = {p: config.atom_channels(p) for p in Precision}
    refs = [loadable.input_tensor, loadable.output_tensor]
    for op in loadable.schedule.ops:
        refs.extend(op.inputs())
        refs.extend(op.outputs())
    for ref in refs:
        base = ref.require_address() - ref.view_offset_bytes(atom[ref.precision])
        size = ref.blob_packed_bytes(atom[ref.precision])
        prev = extents.get(ref.blob)
        if prev is not None:
            assert prev == (base, size), f"blob {ref.blob} has inconsistent extents"
        extents[ref.blob] = (base, size)
    return extents


@pytest.mark.parametrize("name,config,precision", _CASES)
def test_live_buffers_never_overlap(compiled, name, config, precision):
    """Independent liveness recomputation: at every op index, the
    address ranges of all live blobs must be pairwise disjoint."""
    loadable, config = compiled[(name, config.name)]
    ops = [op for op in loadable.schedule.ops]
    extents = _blob_extents(loadable, config)

    first_def: dict[str, int] = {loadable.input_tensor.blob: -1}
    last_use: dict[str, int] = {loadable.output_tensor.blob: len(ops) + 1}
    for index, op in enumerate(ops):
        for ref in op.outputs():
            first_def.setdefault(ref.blob, index)
        for ref in list(op.inputs()) + list(op.outputs()):
            last_use[ref.blob] = max(last_use.get(ref.blob, index), index)

    for index in range(len(ops)):
        live = [
            extents[blob]
            for blob in extents
            if first_def.get(blob, -1) <= index <= last_use.get(blob, -1)
        ]
        live.sort()
        for (a_base, a_size), (b_base, _) in zip(live, live[1:]):
            assert a_base + a_size <= b_base, (
                f"{name}: live buffers overlap at op {index}"
            )


@pytest.mark.parametrize("name,config,precision", _CASES)
def test_all_addresses_inside_dram_window(compiled, name, config, precision):
    loadable, config = compiled[(name, config.name)]
    lo = loadable.memory_map.base
    hi = lo + 512 * 1024 * 1024
    for blob, (base, size) in _blob_extents(loadable, config).items():
        assert lo <= base and base + size <= hi, blob


@pytest.mark.parametrize("name,config,precision", _CASES)
def test_weight_offsets_inside_blob(compiled, name, config, precision):
    loadable, config = compiled[(name, config.name)]
    blob_len = len(loadable.weight_blob)
    for op in loadable.schedule.ops:
        if isinstance(op, ConvOp):
            assert op.weight_offset is not None
            assert op.weight_offset + op.weight_bytes <= blob_len
            if op.bias_offset is not None:
                assert op.bias_offset < blob_len


@pytest.mark.parametrize("name,config,precision", _CASES)
def test_tensors_do_not_cross_into_weight_region(compiled, name, config, precision):
    loadable, config = compiled[(name, config.name)]
    weights = loadable.memory_map.weights
    for blob, (base, size) in _blob_extents(loadable, config).items():
        overlap = not (base + size <= weights.address or base >= weights.end)
        assert not overlap, f"{name}: blob {blob} overlaps the weight region"


@pytest.mark.parametrize("name,config,precision", _CASES)
def test_every_hw_op_input_was_produced_or_preloaded(compiled, name, config, precision):
    """Dataflow sanity: an op may only read the input image, weights,
    or a blob some earlier op wrote."""
    loadable, config = compiled[(name, config.name)]
    produced = {loadable.input_tensor.blob}
    for op in loadable.schedule.ops:
        if isinstance(op, CpuSoftmaxOp):
            continue
        for ref in op.inputs():
            assert ref.blob in produced, f"{name}: {op.name} reads unwritten {ref.blob}"
        for ref in op.outputs():
            produced.add(ref.blob)
