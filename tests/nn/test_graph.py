"""Network graph IR: shape inference, validation, builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn.graph import Network
from repro.nn.layers import Convolution, EltwiseKind, Input, PoolKind


def test_shape_inference_chain(tiny_net):
    assert tiny_net.blob_shapes["conv1"] == (8, 6, 6)
    assert tiny_net.blob_shapes["pool1"] == (8, 3, 3)
    assert tiny_net.blob_shapes["fc1"] == (4, 1, 1)


def test_parameter_initialisation_is_deterministic():
    a = Network("same", seed=5)
    a.add_input("data", (1, 4, 4))
    a.add_conv("conv", "data", num_output=2, kernel_size=3)
    b = Network("same", seed=5)
    b.add_input("data", (1, 4, 4))
    b.add_conv("conv", "data", num_output=2, kernel_size=3)
    assert np.array_equal(a.params["conv"]["weight"], b.params["conv"]["weight"])


def test_seed_defaults_from_name():
    a = Network("alpha")
    b = Network("alpha")
    a.add_input("d", (1, 2, 2))
    b.add_input("d", (1, 2, 2))
    a.add_conv("c", "d", num_output=1, kernel_size=1)
    b.add_conv("c", "d", num_output=1, kernel_size=1)
    assert np.array_equal(a.params["c"]["weight"], b.params["c"]["weight"])


def test_duplicate_layer_name_rejected():
    net = Network("n")
    net.add_input("data", (1, 2, 2))
    net.add_relu("x", "data")
    with pytest.raises(GraphError):
        net.add_relu("x", "data")


def test_unknown_bottom_rejected():
    net = Network("n")
    with pytest.raises(GraphError):
        net.add_relu("r", "ghost")


def test_duplicate_top_rejected():
    net = Network("n")
    net.add_input("data", (1, 2, 2))
    net.add_relu("a", "data")
    with pytest.raises(GraphError):
        net.add(Convolution(name="b", bottoms=("data",), tops=("a",), num_output=1, kernel_size=1))


def test_conv_geometry_validation():
    net = Network("n")
    net.add_input("data", (4, 8, 8))
    with pytest.raises(GraphError):
        net.add_conv("c", "data", num_output=8, kernel_size=9)  # too big
    with pytest.raises(GraphError):
        net.add_conv("g", "data", num_output=6, kernel_size=1, group=4)  # 6 % 4


def test_eltwise_shape_check():
    net = Network("n")
    net.add_input("data", (2, 4, 4))
    a = net.add_conv("a", "data", num_output=2, kernel_size=1)
    b = net.add_conv("b", "data", num_output=2, kernel_size=3, pad=1)
    net.add_eltwise("ok", a, b, EltwiseKind.SUM)
    c = net.add_conv("c", "data", num_output=4, kernel_size=1)
    with pytest.raises(GraphError):
        net.add_eltwise("bad", a, c)


def test_concat_requires_matching_spatial():
    net = Network("n")
    net.add_input("data", (2, 4, 4))
    a = net.add_conv("a", "data", num_output=2, kernel_size=1)
    b = net.add_conv("b", "data", num_output=3, kernel_size=3)  # 2x2 spatial
    with pytest.raises(GraphError):
        net.add_concat("cat", [a, b])


def test_pool_ceil_mode_shape():
    net = Network("n")
    net.add_input("data", (1, 7, 7))
    net.add_pool("p", "data", PoolKind.MAX, kernel_size=3, stride=2)
    assert net.blob_shapes["p"] == (1, 3, 3)  # ceil((7-3)/2)+1 = 3
    net2 = Network("n2")
    net2.add_input("data", (1, 112, 112))
    net2.add_pool("p", "data", PoolKind.MAX, kernel_size=3, stride=2)
    assert net2.blob_shapes["p"] == (1, 56, 56)  # the ResNet stem case


def test_global_pooling_shape():
    net = Network("n")
    net.add_input("data", (16, 9, 11))
    net.add_pool("gap", "data", PoolKind.AVE, global_pooling=True)
    assert net.blob_shapes["gap"] == (16, 1, 1)


def test_output_blob_unique(tiny_net):
    assert tiny_net.output_blob == "prob"


def test_output_blob_ambiguous_without_declaration():
    net = Network("n")
    net.add_input("data", (1, 2, 2))
    net.add_relu("a", "data")
    net.add_relu("b", "data")
    with pytest.raises(GraphError):
        _ = net.output_blob
    net.mark_output("a")
    assert net.output_blob == "a"


def test_mark_output_unknown_blob():
    net = Network("n")
    net.add_input("data", (1, 2, 2))
    with pytest.raises(GraphError):
        net.mark_output("ghost")


def test_parameter_and_size_accounting():
    net = Network("n")
    net.add_input("data", (1, 4, 4))
    net.add_conv("c", "data", num_output=2, kernel_size=3)  # 2*1*9 + 2 = 20
    assert net.parameter_count() == 20
    assert net.model_size_bytes() == 80


def test_layer_count_excludes_input(tiny_net):
    assert tiny_net.layer_count() == 5


def test_summary_mentions_layers(tiny_net):
    text = tiny_net.summary()
    assert "conv1" in text and "Softmax" in text


def test_consumers(tiny_net):
    assert [l.name for l in tiny_net.consumers("conv1")] == ["relu1"]


def test_input_layer_lookup(tiny_net):
    assert isinstance(tiny_net.input_layer, Input)
    assert tiny_net.input_shape == (1, 8, 8)
