"""Property-style bounds for INT8 quantisation round trips.

Parametrised over seeds, shapes and value ranges: symmetric max-abs
quantisation must round-trip any tensor within half-step error, keep
requant constants within their integer fields, and never saturate the
encodable range from the inside.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.quantize import (
    dequantize,
    quantize_weights,
    requant_constants,
)

SHAPES = [(8,), (4, 3, 3, 3), (16, 8, 1, 1), (2, 2, 5, 5)]
RANGES = [0.01, 1.0, 6.5, 300.0]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("peak", RANGES)
def test_weight_roundtrip_error_bound(seed, shape, peak):
    rng = np.random.default_rng(seed)
    weight = rng.uniform(-peak, peak, size=shape).astype(np.float32)
    q = quantize_weights(weight, bias=None, input_scale=1.0)
    # Half-quantisation-step bound, elementwise.
    step = q.weight_scale
    reconstructed = dequantize(q.weight, step)
    assert np.abs(reconstructed - weight).max() <= step / 2 + 1e-7
    # Quantised values span the symmetric int8 range, never -128.
    assert q.weight.min() >= -127
    assert q.weight.max() <= 127
    # The peak element maps to ±127 (max-abs calibration is tight).
    assert np.abs(q.weight).max() == 127


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("input_scale", [1 / 127, 0.02, 1.0])
def test_bias_quantised_at_accumulator_scale(seed, input_scale):
    rng = np.random.default_rng(seed)
    weight = rng.uniform(-1, 1, size=(8, 4, 3, 3)).astype(np.float32)
    bias = rng.uniform(-5, 5, size=(8,)).astype(np.float32)
    q = quantize_weights(weight, bias, input_scale=input_scale)
    assert q.bias is not None and q.bias.dtype == np.int32
    acc_scale = q.weight_scale * input_scale
    # Round-trip bound: half an accumulator step.
    assert np.abs(q.bias * acc_scale - bias).max() <= acc_scale / 2 + 1e-7


def test_zero_weight_tensor_gets_safe_scale():
    q = quantize_weights(np.zeros((4, 4), dtype=np.float32), None, 1.0)
    assert q.weight_scale > 0
    assert not q.weight.any()


@pytest.mark.parametrize(
    "input_scale,weight_scale,output_scale",
    [
        (1 / 127, 1 / 127, 1 / 127),
        (0.03, 0.008, 0.05),
        (1.0, 1.0, 1.0),
        (0.5, 2.0, 0.001),
        (1e-4, 1e-4, 10.0),
    ],
)
def test_requant_constants_stay_in_hardware_fields(
    input_scale, weight_scale, output_scale
):
    mult, shift = requant_constants(input_scale, weight_scale, output_scale)
    # SDP converter fields: 16-bit multiplier, 5-bit shift.
    assert 1 <= mult < (1 << 16)
    assert 0 <= shift <= 31
    # The integer pair approximates the real factor (loose relative
    # bound; tiny factors bottom out at mult=1).
    factor = input_scale * weight_scale / output_scale
    approx = mult / (1 << shift)
    if factor * (1 << 31) >= 1:
        assert approx == pytest.approx(factor, rel=0.1, abs=2 ** -31)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_requant_matches_float_math_on_accumulators(seed):
    """Applying (mult, shift) to int32 accumulators approximates the
    float requantisation they encode."""
    rng = np.random.default_rng(seed)
    input_scale, weight_scale, output_scale = 0.01, 0.005, 0.02
    mult, shift = requant_constants(input_scale, weight_scale, output_scale)
    acc = rng.integers(-(1 << 20), 1 << 20, size=256, dtype=np.int64)
    hw = (acc * mult) >> shift
    real = acc * (input_scale * weight_scale / output_scale)
    # Within one output LSB plus the multiplier's relative error.
    assert np.abs(hw - real).max() <= np.abs(real).max() * 0.02 + 1.0
