"""Model zoo: the paper's size/layer-count columns must reproduce."""

from __future__ import annotations

import pytest

from repro.nn.zoo import ZOO, googlenet, lenet5, resnet18_cifar, resnet50


@pytest.mark.parametrize("name", list(ZOO))
def test_zoo_networks_validate(name):
    net = ZOO[name]()
    net.validate()
    assert net.output_blob == "prob"


def test_lenet5_matches_paper_row():
    net = lenet5()
    assert net.input_shape == (1, 28, 28)
    assert abs(net.model_size_bytes() / 1e6 - 1.7) < 0.1  # paper: 1.7 MB
    assert net.layer_count() + 1 == 9  # paper counts the data layer


def test_resnet18_matches_paper_row():
    net = resnet18_cifar()
    assert net.input_shape == (3, 32, 32)
    # paper: 86 layers, 0.8 MB model file (INT8 deploy size)
    assert abs((net.layer_count() + 1) - 86) <= 5
    assert abs(net.parameter_count() / 1e6 - 0.75) < 0.15


def test_resnet50_matches_paper_row():
    net = resnet50()
    assert net.input_shape == (3, 224, 224)
    assert abs(net.model_size_bytes() / 1e6 - 102.5) < 1.0  # paper: 102.5 MB
    assert abs((net.layer_count() + 1) - 228) <= 3


def test_mobilenet_matches_paper_row():
    net = ZOO["mobilenet"]()
    assert abs(net.model_size_bytes() / 1e6 - 17.0) < 0.5  # paper: 17 MB
    depthwise = [
        l for l in net.layers if getattr(l, "group", 1) > 1
    ]
    assert len(depthwise) == 13  # the 13 separable blocks


def test_googlenet_matches_paper_row_with_aux():
    net = googlenet(include_aux=True)
    assert abs(net.model_size_bytes() / 1e6 - 53.5) < 1.0  # paper: 53.5 MB
    slim = googlenet(include_aux=False)
    assert slim.model_size_bytes() < net.model_size_bytes()
    assert slim.output_blob == "prob"


def test_alexnet_matches_paper_row():
    net = ZOO["alexnet"]()
    assert net.input_shape == (3, 227, 227)
    assert abs(net.model_size_bytes() / 1e6 - 243.9) < 1.0  # paper: 243.9 MB
    grouped = [l for l in net.layers if getattr(l, "group", 1) == 2]
    assert len(grouped) == 3  # conv2, conv4, conv5


def test_resnet18_width_parameter():
    thin = resnet18_cifar(base_width=8)
    default = resnet18_cifar()
    assert default.parameter_count() > thin.parameter_count()


def test_zoo_networks_have_unique_seeded_weights():
    a = lenet5()
    b = lenet5()
    import numpy as np

    assert np.array_equal(a.params["conv1"]["weight"], b.params["conv1"]["weight"])
    c = lenet5(seed=99)
    assert not np.array_equal(a.params["conv1"]["weight"], c.params["conv1"]["weight"])
