"""Float reference executor and INT8 calibration/quantisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn import CalibrationTable, ReferenceExecutor, calibrate_network, quantize_weights
from repro.nn.graph import Network
from repro.nn.layers import EltwiseKind, PoolKind
from repro.nn.quantize import dequantize, requant_constants
from repro.nn.zoo import lenet5


def test_reference_shapes(tiny_net, rng):
    out = ReferenceExecutor(tiny_net).run(
        rng.uniform(-1, 1, tiny_net.input_shape).astype(np.float32)
    )
    assert out.shape == (4, 1, 1)
    assert np.isclose(out.sum(), 1.0)  # softmax normalised


def test_reference_records_blobs(tiny_net, rng):
    executor = ReferenceExecutor(tiny_net)
    executor.run(rng.uniform(-1, 1, tiny_net.input_shape).astype(np.float32), record_blobs=True)
    assert set(executor.blobs) >= {"data", "conv1", "relu1", "pool1", "fc1", "prob"}


def test_reference_conv_against_manual(rng):
    net = Network("manual", seed=3)
    net.add_input("data", (2, 4, 4))
    net.add_conv("conv", "data", num_output=3, kernel_size=3)
    x = rng.normal(size=(2, 4, 4)).astype(np.float32)
    out = ReferenceExecutor(net).run(x)
    w = net.params["conv"]["weight"]
    b = net.params["conv"]["bias"]
    manual = np.zeros((3, 2, 2), dtype=np.float32)
    for k in range(3):
        for oy in range(2):
            for ox in range(2):
                manual[k, oy, ox] = (x[:, oy : oy + 3, ox : ox + 3] * w[k]).sum() + b[k]
    assert np.allclose(out, manual, atol=1e-5)


def test_reference_grouped_conv_blocks_channels(rng):
    net = Network("group", seed=4)
    net.add_input("data", (4, 3, 3))
    net.add_conv("conv", "data", num_output=4, kernel_size=1, group=2, bias=False)
    x = rng.normal(size=(4, 3, 3)).astype(np.float32)
    out = ReferenceExecutor(net).run(x)
    w = net.params["conv"]["weight"]  # (4, 2, 1, 1)
    upper = np.einsum("kc,chw->khw", w[:2, :, 0, 0], x[:2])
    assert np.allclose(out[:2], upper, atol=1e-5)


def test_reference_bn_scale_algebra(rng):
    net = Network("bn", seed=5)
    net.add_input("data", (3, 2, 2))
    net.add_batchnorm("bn", "data")
    net.add_scale("sc", "bn")
    x = rng.normal(size=(3, 2, 2)).astype(np.float32)
    out = ReferenceExecutor(net).run(x)
    mean = net.params["bn"]["mean"].reshape(-1, 1, 1)
    var = net.params["bn"]["variance"].reshape(-1, 1, 1)
    gain = net.params["sc"]["scale"].reshape(-1, 1, 1)
    beta = net.params["sc"]["bias"].reshape(-1, 1, 1)
    expected = (x - mean) / np.sqrt(var + 1e-5) * gain + beta
    assert np.allclose(out, expected, atol=1e-4)


def test_reference_pool_ceil_mode(rng):
    net = Network("pool", seed=6)
    net.add_input("data", (1, 6, 6))
    net.add_pool("p", "data", PoolKind.MAX, kernel_size=3, stride=2)
    x = rng.normal(size=(1, 6, 6)).astype(np.float32)
    out = ReferenceExecutor(net).run(x)
    assert out.shape == (1, 3, 3)  # ceil mode: floor would give 2x2
    assert out[0, 2, 2] == x[0, 4:6, 4:6].max()  # partial corner window


def test_reference_eltwise_kinds(rng):
    for kind in EltwiseKind:
        net = Network(f"ew_{kind.value}", seed=7)
        net.add_input("data", (2, 2, 2))
        a = net.add_relu("a", "data")
        b = net.add_relu("b", "data")
        net.add_eltwise("e", a, b, kind)
        x = np.abs(rng.normal(size=(2, 2, 2))).astype(np.float32)
        out = ReferenceExecutor(net).run(x)
        expected = {"sum": x + x, "prod": x * x, "max": x}[kind.value]
        assert np.allclose(out, expected, atol=1e-5)


def test_reference_rejects_bad_input_shape(tiny_net):
    with pytest.raises(GraphError):
        ReferenceExecutor(tiny_net).run(np.zeros((2, 8, 8), dtype=np.float32))


# ----------------------------------------------------------------------
# Calibration / quantisation.
# ----------------------------------------------------------------------


def test_calibration_covers_all_blobs(tiny_net):
    table = calibrate_network(tiny_net, samples=2)
    assert set(table.scales) == set(tiny_net.blob_shapes)
    assert all(s > 0 for s in table.scales.values())


def test_calibration_text_roundtrip(tiny_net):
    table = calibrate_network(tiny_net, samples=1)
    back = CalibrationTable.from_text(table.to_text())
    assert back.scales.keys() == table.scales.keys()
    for blob, scale in table.scales.items():
        assert back.scales[blob] == pytest.approx(scale, rel=1e-6)


def test_calibration_needs_samples(tiny_net):
    with pytest.raises(GraphError):
        calibrate_network(tiny_net, samples=0)


def test_quantize_weights_bounds(rng):
    weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
    bias = rng.normal(size=(4,)).astype(np.float32)
    q = quantize_weights(weight, bias, input_scale=0.05)
    assert q.weight.dtype == np.int8
    assert q.weight.max() <= 127 and q.weight.min() >= -127
    assert q.bias is not None and q.bias.dtype == np.int32
    recon = dequantize(q.weight, q.weight_scale)
    assert np.abs(recon - weight).max() <= q.weight_scale  # half-ulp rounding


def test_quantize_bias_at_accumulator_scale(rng):
    weight = np.ones((2, 1, 1, 1), dtype=np.float32)
    bias = np.array([1.0, -1.0], dtype=np.float32)
    q = quantize_weights(weight, bias, input_scale=0.5)
    acc_scale = q.weight_scale * 0.5
    assert np.allclose(q.bias * acc_scale, bias, atol=acc_scale)


def test_requant_constants_approximate_factor():
    mult, shift = requant_constants(0.05, 0.02, 0.1)
    factor = 0.05 * 0.02 / 0.1
    assert mult / (1 << shift) == pytest.approx(factor, rel=0.01)
    assert 1 <= mult < (1 << 16)


def test_requant_rejects_nonpositive():
    with pytest.raises(GraphError):
        requant_constants(0.0, 1.0, 1.0)


def test_end_to_end_quantised_lenet_close_to_reference(rng):
    """Full INT8 simulation (via quantize helpers) within a few percent."""
    net = lenet5()
    table = calibrate_network(net, samples=2)
    executor = ReferenceExecutor(net)
    x = rng.uniform(-1, 1, net.input_shape).astype(np.float32)
    expected = executor.run(x, record_blobs=True)
    # Rough check: scales should cover the observed dynamic range.
    for blob, tensor in executor.blobs.items():
        scale = table.scale_for(blob)
        assert np.abs(tensor).max() <= scale * 127 * 1.6 + 1e-6
