"""Prototxt and caffemodel round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn.caffe_proto import from_prototxt, load_caffemodel, save_caffemodel, to_prototxt
from repro.nn.zoo import ZOO


def _same_structure(a, b) -> bool:
    if len(a.layers) != len(b.layers):
        return False
    for la, lb in zip(a.layers, b.layers):
        if (la.name, type(la), la.bottoms, la.tops) != (lb.name, type(lb), lb.bottoms, lb.tops):
            return False
    return a.blob_shapes == b.blob_shapes


def test_roundtrip_tiny(tiny_net):
    text = to_prototxt(tiny_net)
    back = from_prototxt(text)
    assert _same_structure(tiny_net, back)


def test_roundtrip_residual(residual_net):
    back = from_prototxt(to_prototxt(residual_net))
    assert _same_structure(residual_net, back)


def test_roundtrip_branchy(branchy_net):
    back = from_prototxt(to_prototxt(branchy_net))
    assert _same_structure(branchy_net, back)


@pytest.mark.parametrize(
    "name",
    ["lenet5", "resnet18", pytest.param("alexnet", marks=pytest.mark.slow)],
)
def test_roundtrip_zoo_network(name):
    net = ZOO[name]()
    if net.declared_output:
        text = to_prototxt(net)
        back = from_prototxt(text)
        back.mark_output(net.declared_output)
    else:
        back = from_prototxt(to_prototxt(net))
    assert _same_structure(net, back)
    assert back.parameter_count() == net.parameter_count()


def test_prototxt_has_caffe_vocabulary(tiny_net):
    text = to_prototxt(tiny_net)
    assert 'type: "Convolution"' in text
    assert "num_output: 8" in text
    assert "pooling_param" in text
    assert 'name: "tiny"' in text


def test_parse_handles_explicit_batch_dim():
    text = """
    name: "t"
    layer { name: "data" type: "Input" top: "data"
            input_param { shape { dim: 1 dim: 3 dim: 8 dim: 8 } } }
    layer { name: "r" type: "ReLU" bottom: "data" top: "r" }
    """
    net = from_prototxt(text)
    assert net.input_shape == (3, 8, 8)


def test_parse_rejects_unknown_type():
    text = """
    layer { name: "x" type: "Warp" top: "x" }
    """
    with pytest.raises(GraphError):
        from_prototxt(text)


def test_parse_rejects_unbalanced_braces():
    with pytest.raises(GraphError):
        from_prototxt('layer { name: "x" type: "Input" top: "x" ')


def test_caffemodel_roundtrip(tmp_path, tiny_net):
    path = str(tmp_path / "weights.npz")
    save_caffemodel(tiny_net, path)
    clone = from_prototxt(to_prototxt(tiny_net))
    # freshly parsed networks have different random weights
    assert not np.array_equal(
        clone.params["conv1"]["weight"], tiny_net.params["conv1"]["weight"]
    )
    load_caffemodel(clone, path)
    assert np.array_equal(
        clone.params["conv1"]["weight"], tiny_net.params["conv1"]["weight"]
    )
    assert np.array_equal(clone.params["fc1"]["bias"], tiny_net.params["fc1"]["bias"])


def test_caffemodel_shape_mismatch_rejected(tmp_path, tiny_net):
    path = str(tmp_path / "weights.npz")
    save_caffemodel(tiny_net, path)
    other = from_prototxt(
        to_prototxt(tiny_net).replace("num_output: 8", "num_output: 16")
    )
    with pytest.raises(GraphError):
        load_caffemodel(other, path)
