"""Instruction encode/decode: fixed vectors plus round-trip properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import IsaError
from repro.riscv.isa import (
    Decoded,
    Format,
    SPECS,
    SPEC_BY_MNEMONIC,
    decode,
    encode,
    sign_extend,
    to_s32,
    to_u32,
)

# Golden encodings cross-checked against the RISC-V spec examples.
GOLDEN = [
    ("addi", dict(rd=1, rs1=0, imm=42), 0x02A00093),
    ("addi", dict(rd=10, rs1=10, imm=-1), 0xFFF50513),
    ("lui", dict(rd=5, imm=0x12345), 0x123452B7),
    ("auipc", dict(rd=3, imm=0x1), 0x00001197),
    ("add", dict(rd=3, rs1=1, rs2=2), 0x002081B3),
    ("sub", dict(rd=3, rs1=1, rs2=2), 0x402081B3),
    ("sw", dict(rs1=2, rs2=1, imm=8), 0x00112423),
    ("lw", dict(rd=1, rs1=2, imm=8), 0x00812083),
    ("beq", dict(rs1=1, rs2=2, imm=8), 0x00208463),
    ("jal", dict(rd=1, imm=2048), 0x001000EF),
    ("jalr", dict(rd=0, rs1=1, imm=0), 0x00008067),
    ("slli", dict(rd=1, rs1=1, imm=4), 0x00409093),
    ("srai", dict(rd=1, rs1=1, imm=4), 0x4040D093),
    ("mul", dict(rd=3, rs1=1, rs2=2), 0x022081B3),
    ("ecall", dict(), 0x00000073),
    ("ebreak", dict(), 0x00100073),
]


@pytest.mark.parametrize("mnemonic,fields,expected", GOLDEN)
def test_golden_encodings(mnemonic, fields, expected):
    assert encode(mnemonic, **fields) == expected


@pytest.mark.parametrize("mnemonic,fields,expected", GOLDEN)
def test_golden_decodings(mnemonic, fields, expected):
    decoded = decode(expected)
    assert decoded.mnemonic == mnemonic
    for key, value in fields.items():
        assert getattr(decoded, key) == value


def test_unknown_mnemonic_rejected():
    with pytest.raises(IsaError):
        encode("bogus")


def test_misaligned_branch_rejected():
    with pytest.raises(IsaError):
        encode("beq", rs1=0, rs2=0, imm=3)


def test_immediate_range_checked():
    with pytest.raises(IsaError):
        encode("addi", rd=1, rs1=1, imm=5000)
    with pytest.raises(IsaError):
        encode("slli", rd=1, rs1=1, imm=32)


def test_illegal_instruction_raises():
    with pytest.raises(IsaError):
        decode(0xFFFFFFFF)
    with pytest.raises(IsaError):
        decode(0x0000007F)


def test_decode_classifies_loads_stores_branches():
    assert decode(encode("lw", rd=1, rs1=2, imm=0)).is_load
    assert decode(encode("sb", rs1=2, rs2=1, imm=0)).is_store
    assert decode(encode("bne", rs1=1, rs2=2, imm=4)).is_branch
    assert decode(encode("jal", rd=1, imm=4)).is_jump
    assert decode(encode("div", rd=1, rs1=1, rs2=2)).is_mul_div
    assert not decode(encode("add", rd=1, rs1=1, rs2=2)).is_mul_div


def test_sign_extension_helpers():
    assert sign_extend(0xFFF, 12) == -1
    assert sign_extend(0x7FF, 12) == 2047
    assert to_s32(0xFFFFFFFF) == -1
    assert to_u32(-1) == 0xFFFFFFFF


_REG = st.integers(min_value=0, max_value=31)


@given(rd=_REG, rs1=_REG, rs2=_REG)
def test_rtype_roundtrip(rd, rs1, rs2):
    for mnemonic in ("add", "sub", "xor", "sltu", "mul", "remu"):
        word = encode(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        decoded = decode(word)
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.rs2) == (
            mnemonic,
            rd,
            rs1,
            rs2,
        )


@given(rd=_REG, rs1=_REG, imm=st.integers(min_value=-2048, max_value=2047))
def test_itype_roundtrip(rd, rs1, imm):
    for mnemonic in ("addi", "andi", "ori", "lw", "jalr"):
        word = encode(mnemonic, rd=rd, rs1=rs1, imm=imm)
        decoded = decode(word)
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.imm) == (
            mnemonic,
            rd,
            rs1,
            imm,
        )


@given(rs1=_REG, rs2=_REG, imm=st.integers(min_value=-2048, max_value=2047))
def test_stype_roundtrip(rs1, rs2, imm):
    word = encode("sw", rs1=rs1, rs2=rs2, imm=imm)
    decoded = decode(word)
    assert (decoded.rs1, decoded.rs2, decoded.imm) == (rs1, rs2, imm)


@given(rs1=_REG, rs2=_REG, imm=st.integers(min_value=-2048, max_value=2047).map(lambda i: i * 2))
def test_btype_roundtrip(rs1, rs2, imm):
    word = encode("bge", rs1=rs1, rs2=rs2, imm=imm)
    decoded = decode(word)
    assert (decoded.rs1, decoded.rs2, decoded.imm) == (rs1, rs2, imm)


@given(rd=_REG, imm=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1).map(lambda i: i * 2))
def test_jtype_roundtrip(rd, imm):
    word = encode("jal", rd=rd, imm=imm)
    decoded = decode(word)
    assert (decoded.rd, decoded.imm) == (rd, imm)


@given(rd=_REG, imm=st.integers(min_value=0, max_value=(1 << 20) - 1))
def test_utype_roundtrip(rd, imm):
    for mnemonic in ("lui", "auipc"):
        decoded = decode(encode(mnemonic, rd=rd, imm=imm))
        assert (decoded.rd, decoded.imm) == (rd, imm)


@given(
    rd=_REG,
    rs1=_REG,
    csr=st.sampled_from([0x300, 0xB00, 0xC00, 0xC80]),
)
def test_csr_roundtrip(rd, rs1, csr):
    for mnemonic in ("csrrw", "csrrs", "csrrc"):
        decoded = decode(encode(mnemonic, rd=rd, rs1=rs1, csr=csr))
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.csr) == (
            mnemonic,
            rd,
            rs1,
            csr,
        )


def test_spec_table_is_consistent():
    assert len({s.mnemonic for s in SPECS}) == len(SPECS)
    for spec in SPECS:
        assert SPEC_BY_MNEMONIC[spec.mnemonic] is spec


def test_every_spec_roundtrips_through_decode():
    for spec in SPECS:
        if spec.fmt in (Format.CSR, Format.CSRI):
            word = encode(spec.mnemonic, rd=1, rs1=1, imm=1 if spec.fmt is Format.CSRI else 0, csr=0x300)
        elif spec.fmt is Format.B:
            word = encode(spec.mnemonic, rs1=1, rs2=2, imm=8)
        elif spec.fmt is Format.J:
            word = encode(spec.mnemonic, rd=1, imm=8)
        elif spec.fmt is Format.SHIFT:
            word = encode(spec.mnemonic, rd=1, rs1=1, imm=3)
        elif spec.fmt in (Format.SYS, Format.FENCE):
            word = encode(spec.mnemonic)
        elif spec.fmt is Format.U:
            word = encode(spec.mnemonic, rd=1, imm=5)
        elif spec.fmt is Format.S:
            word = encode(spec.mnemonic, rs1=1, rs2=2, imm=4)
        else:
            word = encode(spec.mnemonic, rd=1, rs1=2, rs2=3, imm=4)
        assert decode(word).mnemonic == spec.mnemonic


def test_decoded_is_hashable_value_object():
    a = decode(encode("add", rd=1, rs1=2, rs2=3))
    b = decode(encode("add", rd=1, rs1=2, rs2=3))
    assert a == b
    assert isinstance(a, Decoded)
