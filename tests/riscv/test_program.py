"""Program images: .mem/.bin round trips and the disassembler."""

from __future__ import annotations

import pytest

from repro.errors import IsaError
from repro.riscv import assemble, disassemble, disassemble_program
from repro.riscv.program import Program


def test_mem_file_roundtrip():
    program = assemble("li a0, 0x1234\nebreak\n", base=0x100)
    text = program.to_mem_file()
    back = Program.from_mem_file(text)
    assert back.words == program.words
    assert back.base == 0x100


def test_mem_file_format_has_address_directive():
    program = assemble("nop\n", base=0x400)
    assert program.to_mem_file().startswith("@00000100\n")  # word address


def test_bin_roundtrip():
    program = assemble("li a0, 42\nebreak\n")
    back = Program.from_bytes(program.to_bin_file())
    assert back.words == program.words


def test_word_at_bounds_checked():
    program = assemble("nop\n", base=0x10)
    assert program.word_at(0x10) == program.words[0]
    with pytest.raises(IsaError):
        program.word_at(0x20)
    with pytest.raises(IsaError):
        program.word_at(0x11)


def test_unaligned_base_rejected():
    with pytest.raises(IsaError):
        Program(base=2)


def test_odd_bin_rejected():
    with pytest.raises(IsaError):
        Program.from_bytes(b"\x00\x01\x02")


def test_disassembler_renders_known_forms():
    assert disassemble(0x00500093) == "addi ra, zero, 5"
    assert disassemble(0x002081B3) == "add gp, ra, sp"
    assert "jal" in disassemble(0x001000EF, pc=0)


def test_disassemble_program_listing_contains_symbols():
    program = assemble("_start:\n  li a0, 1\nloop:\n  j loop\n")
    listing = disassemble_program(program)
    assert "_start:" in listing
    assert "loop:" in listing
    assert "00000008" in listing  # address of the loop


def test_disassemble_data_word_falls_back():
    program = Program(words=[0xFFFFFFFF])
    listing = disassemble_program(program)
    assert ".word 0xffffffff" in listing
