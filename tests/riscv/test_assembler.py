"""Assembler: directives, labels, expressions, pseudo-instructions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblerError
from repro.riscv.assembler import assemble
from repro.riscv.disassembler import disassemble
from repro.riscv.isa import decode


def words(source: str, base: int = 0):
    return assemble(source, base=base).words


def test_single_instruction():
    assert words("addi x1, x0, 5") == [0x00500093]


def test_register_aliases_accepted():
    assert words("addi ra, zero, 1") == words("addi x1, x0, 1")
    assert words("add fp, s0, t6") == words("add x8, x8, x31")


def test_label_backward_branch():
    program = assemble("loop:\n  addi t0, t0, 1\n  bne t0, t1, loop\n")
    decoded = decode(program.words[1])
    assert decoded.mnemonic == "bne"
    assert decoded.imm == -4


def test_label_forward_branch():
    program = assemble("  beq x0, x0, out\n  nop\nout:\n  nop\n")
    assert decode(program.words[0]).imm == 8


def test_multiple_labels_same_address():
    program = assemble("a:\nb:  nop\n")
    assert program.symbols["a"] == program.symbols["b"] == 0


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("x:\n nop\nx:\n nop\n")


def test_equ_and_expressions():
    program = assemble(
        """
        .equ BASE, 0x1000
        .equ OFF, BASE + 4 * 8
        lui t0, %hi(OFF)
        addi t0, t0, %lo(OFF)
        """
    )
    # OFF = 0x1020 -> hi=1 if lo carries? lo(0x1020)=0x20, hi=0x1.
    assert decode(program.words[0]).imm == 0x1
    assert decode(program.words[1]).imm == 0x20


def test_hi_lo_sign_correction():
    # 0x12345FFF: lo = -1 (0xFFF sign-extends), hi must be 0x12346.
    program = assemble("lui t0, %hi(0x12345FFF)\naddi t0, t0, %lo(0x12345FFF)\n")
    hi = decode(program.words[0]).imm
    lo = decode(program.words[1]).imm
    assert (hi << 12) + lo == 0x12345FFF


@given(value=st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_li_materialises_any_u32(value):
    program = assemble(f"li a0, 0x{value:08x}\n")
    hi = decode(program.words[0]).imm
    lo = decode(program.words[1]).imm
    assert ((hi << 12) + lo) & 0xFFFFFFFF == value


def test_word_and_byte_directives():
    program = assemble(".word 0xDEADBEEF, 17\n.byte 1, 2\n.half 0x3344\n")
    assert program.words[0] == 0xDEADBEEF
    assert program.words[1] == 17
    assert program.words[2] & 0xFFFF == 0x0201
    assert (program.words[2] >> 16) & 0xFFFF == 0x3344


def test_align_and_org():
    program = assemble(".byte 1\n.align 2\n.word 7\n")
    assert program.words[1] == 7
    program = assemble("nop\n.org 16\nmarker: nop\n")
    assert program.symbols["marker"] == 16


def test_org_backwards_rejected():
    with pytest.raises(AssemblerError):
        assemble(".org 8\n nop\n.org 4\n")


def test_asciz_and_space():
    program = assemble('.asciz "ab"\n.align 2\n.space 4\n')
    assert program.words[0] & 0xFFFFFF == 0x006261


def test_memory_operand_forms():
    one = words("lw a0, 8(sp)")
    two = words("lw a0, 4+4(sp)")
    assert one == two
    assert decode(words("sw a1, -4(s0)")[0]).imm == -4


@pytest.mark.parametrize(
    "pseudo,real",
    [
        ("nop", "addi x0, x0, 0"),
        ("mv a0, a1", "addi a0, a1, 0"),
        ("not a0, a1", "xori a0, a1, -1"),
        ("neg a0, a1", "sub a0, x0, a1"),
        ("seqz a0, a1", "sltiu a0, a1, 1"),
        ("snez a0, a1", "sltu a0, x0, a1"),
        ("jr ra", "jalr x0, ra, 0"),
        ("ret", "jalr x0, ra, 0"),
    ],
)
def test_simple_pseudo_instructions(pseudo, real):
    assert words(pseudo) == words(real)


def test_branch_pseudo_instructions():
    target = "x:\n nop\n"
    assert words("beqz a0, x\n" + target) == words("beq a0, x0, x\n" + target)
    assert words("bgt a0, a1, x\n" + target) == words("blt a1, a0, x\n" + target)
    assert words("bleu a0, a1, x\n" + target) == words("bgeu a1, a0, x\n" + target)


def test_csr_pseudo_instructions():
    assert words("csrr a0, mcycle") == words("csrrs a0, mcycle, x0")
    assert words("csrw mtvec, a0") == words("csrrw x0, mtvec, a0")


def test_comments_stripped_everywhere():
    program = assemble(
        """
        # full line comment
        addi x1, x0, 1  # trailing
        addi x2, x0, 2  // c++ style
        addi x3, x0, 3  ; asm style
        """
    )
    assert len(program.words) == 3


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("nop\nfrobnicate x0\n")
    assert "line 2" in str(excinfo.value)


def test_missing_operand_reports_mnemonic():
    with pytest.raises(AssemblerError):
        assemble("add x1, x2\n")


def test_undefined_symbol_raises():
    with pytest.raises(AssemblerError):
        assemble("li a0, MISSING\n")


def test_base_address_shifts_labels():
    program = assemble("start: nop\n", base=0x400)
    assert program.symbols["start"] == 0x400
    assert program.base == 0x400


def test_entry_defaults_to_start_symbol():
    program = assemble("nop\n_start:\n nop\n")
    assert program.entry == 4


@given(
    st.lists(
        st.sampled_from(
            ["nop", "addi t0, t0, 1", "add t1, t0, t0", "xor t2, t1, t0", "sltu t3, t1, t2"]
        ),
        min_size=1,
        max_size=30,
    )
)
def test_assemble_disassemble_reassemble_fixpoint(lines):
    source = "\n".join(lines) + "\n"
    first = assemble(source)
    listing = "\n".join(disassemble(w, pc=i * 4) for i, w in enumerate(first.words))
    second = assemble(listing + "\n")
    assert first.words == second.words
