"""4-stage pipeline timing: hazards, flushes, multi-cycle EX."""

from __future__ import annotations

from repro.riscv.isa import decode, encode
from repro.riscv.pipeline import PipelineModel


def _d(mnemonic, **fields):
    return decode(encode(mnemonic, **fields))


def test_alu_instruction_is_single_cycle():
    model = PipelineModel()
    assert model.instruction_cycles(_d("add", rd=1, rs1=2, rs2=3)) == 1


def test_load_use_hazard_stalls_one_cycle():
    model = PipelineModel()
    model.instruction_cycles(_d("lw", rd=5, rs1=2, imm=0))
    cost = model.instruction_cycles(_d("add", rd=6, rs1=5, rs2=0))
    assert cost == 1 + model.load_use_penalty
    assert model.stats.load_use_stalls == 1


def test_load_then_independent_op_no_stall():
    model = PipelineModel()
    model.instruction_cycles(_d("lw", rd=5, rs1=2, imm=0))
    assert model.instruction_cycles(_d("add", rd=6, rs1=7, rs2=8)) == 1


def test_load_into_x0_never_stalls():
    model = PipelineModel()
    model.instruction_cycles(_d("lw", rd=0, rs1=2, imm=0))
    assert model.instruction_cycles(_d("add", rd=6, rs1=0, rs2=0)) == 1


def test_hazard_window_is_one_instruction():
    model = PipelineModel()
    model.instruction_cycles(_d("lw", rd=5, rs1=2, imm=0))
    model.instruction_cycles(_d("add", rd=6, rs1=7, rs2=8))  # gap
    assert model.instruction_cycles(_d("add", rd=9, rs1=5, rs2=5)) == 1


def test_taken_branch_flushes_frontend():
    model = PipelineModel()
    taken = model.instruction_cycles(_d("beq", rs1=1, rs2=2, imm=8), taken=True)
    not_taken = model.instruction_cycles(_d("beq", rs1=1, rs2=2, imm=8), taken=False)
    assert taken == 1 + model.taken_branch_penalty
    assert not_taken == 1
    assert model.stats.control_flushes == 1


def test_jumps_always_pay_redirect():
    model = PipelineModel()
    assert model.instruction_cycles(_d("jal", rd=1, imm=8), taken=True) == 1 + model.jump_penalty


def test_muldiv_iterates_in_ex():
    model = PipelineModel()
    mul = model.instruction_cycles(_d("mul", rd=1, rs1=2, rs2=3))
    div = model.instruction_cycles(_d("div", rd=1, rs1=2, rs2=3))
    assert mul == model.mul_cycles
    assert div == model.div_cycles
    assert model.stats.muldiv_stalls == (model.mul_cycles - 1) + (model.div_cycles - 1)


def test_bus_wait_states_accumulate():
    model = PipelineModel()
    cost = model.instruction_cycles(_d("lw", rd=1, rs1=2, imm=0), bus_wait=13)
    assert cost == 1 + 13
    assert model.stats.bus_wait_cycles == 13


def test_cpi_accounting():
    model = PipelineModel()
    for _ in range(10):
        model.instruction_cycles(_d("add", rd=1, rs1=2, rs2=3))
    assert model.stats.cpi == 1.0
    model.instruction_cycles(_d("div", rd=1, rs1=2, rs2=3))
    assert model.stats.cpi > 1.0


def test_reset_clears_state():
    model = PipelineModel()
    model.instruction_cycles(_d("lw", rd=5, rs1=2, imm=0))
    model.reset()
    assert model.stats.instructions == 0
    assert model.instruction_cycles(_d("add", rd=6, rs1=5, rs2=0)) == 1  # no stale hazard


def test_class_histogram():
    model = PipelineModel()
    model.instruction_cycles(_d("lw", rd=1, rs1=2, imm=0))
    model.instruction_cycles(_d("sw", rs1=2, rs2=1, imm=0))
    model.instruction_cycles(_d("beq", rs1=1, rs2=2, imm=8))
    model.instruction_cycles(_d("jal", rd=0, imm=8), taken=True)
    model.instruction_cycles(_d("mul", rd=1, rs1=1, rs2=1))
    model.instruction_cycles(_d("add", rd=1, rs1=1, rs2=1))
    assert model.stats.by_class == {
        "load": 1,
        "store": 1,
        "branch": 1,
        "jump": 1,
        "muldiv": 1,
        "alu": 1,
    }


def test_deeper_pipeline_costs_more_on_branches():
    shallow = PipelineModel(taken_branch_penalty=2)
    deep = PipelineModel(taken_branch_penalty=5)
    d = _d("beq", rs1=1, rs2=2, imm=8)
    assert deep.instruction_cycles(d, taken=True) > shallow.instruction_cycles(d, taken=True)
