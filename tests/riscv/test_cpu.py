"""ISS semantics: every instruction class, hazards, CSRs, semihosting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bus.types import BusPort, Reply, Transfer, AccessType
from repro.errors import CpuFault
from repro.mem import Bram
from repro.riscv import Cpu, assemble
from repro.riscv.isa import to_s32


class _FlatBus(BusPort):
    """1-cycle flat data memory for semantics tests."""

    def __init__(self, size: int = 1 << 16) -> None:
        self.store = bytearray(size)

    def transfer(self, xfer: Transfer) -> Reply:
        end = xfer.end_address
        if end > len(self.store):
            raise ValueError(f"access beyond memory: 0x{xfer.address:08x}")
        if xfer.access is AccessType.WRITE:
            self.store[xfer.address : end] = xfer.data
            return Reply(cycles=1)
        return Reply(data=bytes(self.store[xfer.address : end]), cycles=1)


def run_asm(source: str, max_instructions: int = 100_000) -> Cpu:
    cpu = Cpu(ibus=Bram(1 << 16), dbus=_FlatBus())
    cpu.load_program(assemble(source))
    cpu.run(max_instructions=max_instructions)
    return cpu


def exit_value(source_body: str) -> int:
    """Run a fragment that leaves its result in a0, return it signed."""
    source = source_body + "\n    li a7, 93\n    ecall\n"
    return to_s32(run_asm(source).regs[10])


def test_arithmetic_basics():
    assert exit_value("li a0, 2\n li t0, 3\n add a0, a0, t0") == 5
    assert exit_value("li a0, 2\n li t0, 3\n sub a0, a0, t0") == -1
    assert exit_value("li a0, -1\n srli a0, a0, 28") == 0xF
    assert exit_value("li a0, -16\n srai a0, a0, 2") == -4
    assert exit_value("li a0, 5\n slli a0, a0, 3") == 40


def test_logic_and_compare():
    assert exit_value("li a0, 0xF0\n andi a0, a0, 0x3C") == 0x30
    assert exit_value("li a0, 0xF0\n ori a0, a0, 0x0F") == 0xFF
    assert exit_value("li a0, 0xFF\n xori a0, a0, 0x0F") == 0xF0
    assert exit_value("li t0, -5\n li t1, 3\n slt a0, t0, t1") == 1
    assert exit_value("li t0, -5\n li t1, 3\n sltu a0, t0, t1") == 0


def test_x0_is_hardwired_zero():
    assert exit_value("li t0, 99\n add x0, t0, t0\n mv a0, x0") == 0


@pytest.mark.parametrize(
    "a,b,op,expected",
    [
        (7, 3, "mul", 21),
        (-7, 3, "mul", -21),
        (0x7FFFFFFF, 2, "mulh", 0),
        (-1, -1, "mulhu", 0xFFFFFFFE),  # (2^32-1)^2 >> 32
        (7, 2, "div", 3),
        (-7, 2, "div", -3),  # toward zero
        (7, -2, "div", -3),
        (7, 2, "rem", 1),
        (-7, 2, "rem", -1),  # sign of dividend
        (7, 0, "div", -1),  # div by zero
        (7, 0, "rem", 7),
        (-(1 << 31), -1, "div", -(1 << 31)),  # overflow case
        (-(1 << 31), -1, "rem", 0),
    ],
)
def test_m_extension_semantics(a, b, op, expected):
    value = exit_value(f"li t0, {a}\n li t1, {b}\n {op} a0, t0, t1")
    assert value == to_s32(expected)


def test_mulhu_exact():
    # (2^32 - 1)^2 = 2^64 - 2^33 + 1 -> high word = 2^32 - 2 = 0xFFFFFFFE
    got = exit_value("li t0, -1\n li t1, -1\n mulhu a0, t0, t1")
    assert got == to_s32(0xFFFFFFFE)


def test_loads_and_stores_with_sign_extension():
    body = """
        li t0, 0x1000
        li t1, 0xFFFFFF85
        sb t1, 0(t0)
        lb a0, 0(t0)
    """
    assert exit_value(body) == -123
    body = body.replace("lb a0", "lbu a0")
    assert exit_value(body) == 0x85
    half = """
        li t0, 0x1000
        li t1, 0x8001
        sh t1, 2(t0)
        lh a0, 2(t0)
    """
    assert exit_value(half) == to_s32(0xFFFF8001)
    assert exit_value(half.replace("lh a0", "lhu a0")) == 0x8001


def test_word_store_load_roundtrip():
    assert exit_value(
        "li t0, 0x2000\n li t1, 0x CAFEBABE\n sw t1, 4(t0)\n lw a0, 4(t0)".replace(" CAFEBABE", "0xCAFEBABE"[2:])
    ) == to_s32(0xCAFEBABE)


def test_branches_all_variants():
    for op, a, b, taken in [
        ("beq", 1, 1, True),
        ("beq", 1, 2, False),
        ("bne", 1, 2, True),
        ("blt", -1, 1, True),
        ("bge", 1, -1, True),
        ("bltu", 1, 0xFFFFFFFF, True),
        ("bgeu", 0xFFFFFFFF, 1, True),
    ]:
        body = f"""
            li t0, {a}
            li t1, {b}
            li a0, 0
            {op} t0, t1, yes
            li a0, 1
            j end
        yes:
            li a0, 2
        end:
        """
        assert exit_value(body) == (2 if taken else 1)


def test_jal_jalr_link_register():
    body = """
        jal ra, sub
        mv a0, t5
        j end
    sub:
        li t5, 7
        ret
    end:
    """
    assert exit_value(body) == 7


def test_auipc_pc_relative():
    cpu = run_asm("start: auipc a0, 0\n li a7, 93\n ecall\n")
    assert to_s32(cpu.regs[10]) == 0


def test_fibonacci_program():
    body = """
        li t0, 10      # n
        li a0, 0
        li t1, 1
    fib:
        beqz t0, done
        add t2, a0, t1
        mv a0, t1
        mv t1, t2
        addi t0, t0, -1
        j fib
    done:
    """
    assert exit_value(body) == 55


def test_memcpy_program():
    body = """
        li t0, 0x100      # src
        li t1, 0x200      # dst
        li t2, 0x11223344
        sw t2, 0(t0)
        li t3, 4          # bytes
    copy:
        beqz t3, check
        lbu t4, 0(t0)
        sb t4, 0(t1)
        addi t0, t0, 1
        addi t1, t1, 1
        addi t3, t3, -1
        j copy
    check:
        li t1, 0x200
        lw a0, 0(t1)
    """
    assert exit_value(body) == 0x11223344


def test_csr_counters_monotonic():
    cpu = run_asm(
        """
        csrr s0, mcycle
        nop
        nop
        csrr s1, mcycle
        csrr s2, minstret
        li a7, 93
        li a0, 0
        ecall
        """
    )
    assert cpu.regs[9] > cpu.regs[8]  # s1 > s0
    assert cpu.regs[18] >= 4


def test_csr_write_and_read_back():
    cpu = run_asm(
        """
        li t0, 0x1234
        csrw mtvec, t0
        csrr a0, mtvec
        li a7, 93
        ecall
        """
    )
    assert cpu.exit_code == 0x1234


def test_putchar_console():
    cpu = run_asm(
        """
        li a0, 'H'
        li a7, 64
        ecall
        li a0, 'i'
        li a7, 64
        ecall
        li a0, 0
        li a7, 93
        ecall
        """
    )
    assert cpu.console_text() == "Hi"


def test_ebreak_halts_with_zero():
    cpu = run_asm("nop\nebreak\n")
    assert cpu.halted and cpu.exit_code == 0


def test_unsupported_ecall_faults():
    with pytest.raises(CpuFault):
        run_asm("li a7, 1234\necall\n")


def test_runaway_program_faults():
    with pytest.raises(CpuFault):
        run_asm("loop: j loop\n", max_instructions=100)


def test_load_fault_includes_pc():
    with pytest.raises(CpuFault) as excinfo:
        run_asm("li t0, 0x70000000\nlw a0, 0(t0)\nebreak\n")
    assert excinfo.value.pc is not None


def test_poll_tracker_detects_streak():
    cpu = Cpu(ibus=Bram(1 << 16), dbus=_FlatBus())
    cpu.load_program(
        assemble(
            """
        li t0, 0x100
    poll:
        lw t1, 0(t0)
        beqz t1, poll
        """
        )
    )
    for _ in range(40):
        cpu.step()
    assert cpu.poll.streak > 5
    assert cpu.poll.address == 0x100


@settings(max_examples=25)
@given(a=st.integers(-1000, 1000), b=st.integers(-1000, 1000))
def test_add_matches_python(a, b):
    assert exit_value(f"li t0, {a}\n li t1, {b}\n add a0, t0, t1") == to_s32(a + b)


@settings(max_examples=25)
@given(a=st.integers(-(2**31), 2**31 - 1), b=st.integers(-(2**31), 2**31 - 1).filter(lambda v: v != 0))
def test_div_rem_invariant(a, b):
    """RISC-V guarantees a == div(a,b)*b + rem(a,b) (toward-zero)."""
    q = exit_value(f"li t0, {a}\n li t1, {b}\n div a0, t0, t1")
    r = exit_value(f"li t0, {a}\n li t1, {b}\n rem a0, t0, t1")
    if a != -(1 << 31) or b != -1:
        assert q * b + r == a
