"""Simulation clock: event ordering, fast-forward, conversions."""

from __future__ import annotations

import pytest

from repro.clock import Clock


def test_advance_moves_time():
    clock = Clock(100e6)
    clock.advance(50)
    assert clock.now == 50
    assert clock.seconds() == pytest.approx(50 / 100e6)


def test_events_fire_in_timestamp_order():
    clock = Clock()
    fired = []
    clock.schedule_at(30, lambda: fired.append("c"))
    clock.schedule_at(10, lambda: fired.append("a"))
    clock.schedule_at(20, lambda: fired.append("b"))
    clock.advance_to(25)
    assert fired == ["a", "b"]
    clock.advance_to(35)
    assert fired == ["a", "b", "c"]


def test_same_cycle_events_fifo():
    clock = Clock()
    fired = []
    clock.schedule_at(10, lambda: fired.append(1))
    clock.schedule_at(10, lambda: fired.append(2))
    clock.advance_to(10)
    assert fired == [1, 2]


def test_callback_sees_its_own_timestamp():
    clock = Clock()
    seen = []
    clock.schedule_at(40, lambda: seen.append(clock.now))
    clock.advance_to(100)
    assert seen == [40]
    assert clock.now == 100


def test_callback_may_schedule_followups():
    clock = Clock()
    fired = []

    def first():
        fired.append("first")
        clock.schedule_after(5, lambda: fired.append("second"))

    clock.schedule_at(10, first)
    clock.advance_to(20)
    assert fired == ["first", "second"]


def test_fast_forward_jumps_to_next_event():
    clock = Clock()
    fired = []
    clock.schedule_at(1000, lambda: fired.append(True))
    assert clock.fast_forward_to_next_event()
    assert clock.now == 1000 and fired == [True]
    assert not clock.fast_forward_to_next_event()  # queue empty
    assert clock.now == 1000


def test_next_event_cycle():
    clock = Clock()
    assert clock.next_event_cycle() is None
    clock.schedule_at(7, lambda: None)
    assert clock.next_event_cycle() == 7


def test_cannot_schedule_in_the_past():
    clock = Clock()
    clock.advance(10)
    with pytest.raises(ValueError):
        clock.schedule_at(5, lambda: None)
    with pytest.raises(ValueError):
        clock.schedule_after(-1, lambda: None)


def test_cannot_rewind():
    clock = Clock()
    clock.advance(10)
    with pytest.raises(ValueError):
        clock.advance_to(5)
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_reset_clears_everything():
    clock = Clock()
    clock.schedule_at(10, lambda: None)
    clock.advance(5)
    clock.reset()
    assert clock.now == 0
    assert clock.next_event_cycle() is None


def test_invalid_frequency_rejected():
    with pytest.raises(ValueError):
        Clock(0)


def test_seconds_of_explicit_cycles():
    clock = Clock(200e6)
    assert clock.seconds(200) == pytest.approx(1e-6)
