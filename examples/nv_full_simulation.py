#!/usr/bin/env python3
"""Table III scenario: nv_full simulation across the full model zoo.

Reproduces the paper's §V nv_full evaluation: FP16 inference of all
six networks on the big configuration (2048 MACs, 512 KiB CBUF),
which "is an enormous design and does not fit on most FPGAs" — so,
exactly as in the paper, this is a simulation-only study, and the
FPGA feasibility check is expected to fail.

Usage::

    python examples/nv_full_simulation.py [model ...]
"""

from __future__ import annotations

import sys

from repro.baremetal import generate_baremetal
from repro.core import Soc
from repro.fpga import ZCU102, synthesize
from repro.harness.reporting import PAPER_TABLE3_CYCLES
from repro.nn.zoo import ZOO
from repro.nvdla import NV_FULL
from repro.nvdla.config import Precision


def main(models: list[str]) -> None:
    print(f"configuration: {NV_FULL.describe()}")
    synth = synthesize(NV_FULL, ZCU102)
    print(f"ZCU102 feasibility: {'fits' if synth.fits else 'DOES NOT FIT'} "
          f"(LUTs at {synth.utilization['luts'] * 100:.0f}%) — simulation only, as in the paper\n")

    header = f"{'model':<10} {'hw ops':>6} {'cycles':>13} {'paper':>12} {'ratio':>6} {'ms@100MHz':>10}"
    print(header)
    print("-" * len(header))
    for name in models:
        bundle = generate_baremetal(
            ZOO[name](), NV_FULL, precision=Precision.FP16, fidelity="timing"
        )
        soc = Soc(NV_FULL, frequency_hz=100e6, fidelity="timing", memory_bus_width_bits=64)
        soc.load_bundle(bundle)
        result = soc.run_inference(bundle)
        paper = PAPER_TABLE3_CYCLES[name]
        print(
            f"{name:<10} {len(result.op_records):>6} {result.cycles:>13,} "
            f"{paper:>12,} {result.cycles / paper:>6.2f} {result.milliseconds:>10.1f}"
        )
    print("\nnote: FP16 rides the paired-MAC path (1024 FP16 MACs); depthwise and")
    print("low-channel layers waste the 64-wide channel atoms, which is why")
    print("MobileNet's 17 MB costs the same order as ResNet-50's 102.5 MB.")


if __name__ == "__main__":
    chosen = sys.argv[1:] or list(PAPER_TABLE3_CYCLES)
    main(chosen)
