#!/usr/bin/env python3
"""Fig. 1 walkthrough: every artefact of the software-generation flow.

Dumps each intermediate of the paper's offline flow for LeNet-5 into
``./flow_artifacts/``:

- ``lenet5.prototxt``            — the Caffe-style model description,
- ``lenet5.calib``               — the INT8 calibration table,
- ``lenet5.loadable``            — the compiled loadable,
- ``vp_trace.log``               — the VP's csb/dbb transaction log,
- ``lenet5.cfg``                 — the read_reg/write_reg config file,
- ``lenet5.S`` / ``lenet5.mem``  — generated assembly and machine code,
- ``weights.bin`` / ``input.bin``— the DRAM preload images,
- ``fig1.txt``                   — the flow diagram with real sizes.

Usage::

    python examples/lenet_baremetal_flow.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.baremetal import generate_baremetal
from repro.diagrams import render_fig1_software_flow
from repro.nn.caffe_proto import to_prototxt
from repro.nn.quantize import calibrate_network
from repro.nn.zoo import lenet5
from repro.nvdla import NV_SMALL


def main(output_dir: str = "flow_artifacts") -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    net = lenet5()
    print(f"generating bare-metal flow artefacts for {net.name} -> {out}/")

    (out / "lenet5.prototxt").write_text(to_prototxt(net))
    table = calibrate_network(net, samples=2)
    (out / "lenet5.calib").write_text(table.to_text())

    bundle = generate_baremetal(net, NV_SMALL)
    (out / "lenet5.loadable").write_bytes(bundle.loadable.to_bytes())
    (out / "vp_trace.log").write_text(bundle.trace.render())
    (out / "lenet5.cfg").write_text(bundle.config_file_text)
    (out / "lenet5.S").write_text(bundle.assembly)
    (out / "lenet5.mem").write_text(bundle.images.program_mem)
    for image in bundle.images.preload:
        (out / image.name).write_bytes(image.data)
        print(f"  {image.name}: {image.size:,} bytes @ 0x{image.load_address:08x}")

    diagram = render_fig1_software_flow(bundle)
    (out / "fig1.txt").write_text(diagram)
    print()
    print(diagram)
    print()
    print(f"trace:   {len(bundle.trace.csb)} csb + {len(bundle.trace.dbb)} dbb transactions")
    print(f"config:  {len(bundle.commands)} commands")
    print(f"program: {len(bundle.program.words)} words ({bundle.program.size_bytes / 1024:.1f} KiB)")
    print(f"all artefacts in {out.resolve()}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "flow_artifacts")
