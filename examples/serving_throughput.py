#!/usr/bin/env python3
"""Serving demo: a mixed LeNet-5 + ResNet-18 workload through the
batched inference service.

The paper's offline flow (compile → VP trace capture → config file →
bare-metal codegen) is expensive; the generated artefacts are not.
`repro.serve` memoises the flow per deployment and replays the cached
bundle on pooled SoC workers, which is how the reproduction scales from
"one inference per script" to "a request stream":

1. build a 12-request workload alternating LeNet-5 and ResNet-18 on
   nv_small, every input drawn from one seeded generator,
2. serve it: 2 offline-flow builds (one per model), 12 SoC runs,
3. print throughput, latency percentiles and cache statistics,
4. demonstrate that a cache-hit run is bit-identical to a fresh
   cold-path run for the same input.

Usage::

    python examples/serving_throughput.py
"""

from __future__ import annotations

import numpy as np

from repro.baremetal import generate_baremetal
from repro.core import Soc
from repro.nn.zoo import ZOO
from repro.nvdla import NV_SMALL
from repro.serve import DeploymentSpec, InferenceService, make_input_for


def main() -> None:
    print("=== 1. workload ===")
    rng = np.random.default_rng(2025)  # one seed → reproducible workload
    deployments = [DeploymentSpec("lenet5"), DeploymentSpec("resnet18")]
    nets = {d.model: ZOO[d.model]() for d in deployments}
    workload = []
    for index in range(12):
        deployment = deployments[index % len(deployments)]
        workload.append((deployment, make_input_for(nets[deployment.model], rng)))
    print(f"{len(workload)} requests over {[d.model for d in deployments]} on nv_small")

    print("\n=== 2. serve ===")
    service = InferenceService(max_batch_size=4)
    for deployment, image in workload:
        service.request(deployment, image)
    responses = service.run_pending()
    ok = sum(r.ok for r in responses)
    print(f"{ok}/{len(responses)} requests completed")
    hits = sum(r.cache_hit for r in responses)
    print(f"{hits} served from cached bundles ({len(responses) - hits} cold builds)")

    print("\n=== 3. service metrics ===")
    print(service.metrics.render())

    print("\n=== 4. cache-hit outputs are bit-identical to cold runs ===")
    deployment, image = workload[0]
    bundle = generate_baremetal(
        ZOO[deployment.model](), NV_SMALL, input_image=image
    )
    soc = Soc(NV_SMALL)
    soc.load_bundle(bundle)
    cold = soc.run_inference(bundle)
    warm = next(r for r in responses if r.request_id == 0)
    identical = (
        cold.output is not None
        and warm.output is not None
        and np.array_equal(cold.output, warm.output)
    )
    print(f"outputs identical: {identical}   cycles: {cold.cycles:,} == {warm.cycles:,}")
    if not identical or cold.cycles != warm.cycles:
        raise SystemExit("cache-hit run diverged from cold path")

    print("\n=== 5. the calibrated fast tier ===")
    # Calibrate once (one cycle-accurate run per model), then serve the
    # same workload on the functional fast path: no ISS, no bus
    # transactions, bit-identical tensors, cycles from the analytic
    # model (gated to ±10 % of measured).
    from dataclasses import replace

    from repro.core import calibrate

    table = calibrate(("lenet5", "resnet18"), NV_SMALL, cache=service.cache)
    fast_service = InferenceService(
        cache=service.cache, max_batch_size=4, calibration=table
    )
    for deployment, image in workload:
        fast_service.request(replace(deployment, execution_mode="fast"), image)
    fast_responses = fast_service.run_pending()
    by_id = {r.request_id: r for r in responses}
    for fast_response in fast_responses:
        slow_response = by_id[fast_response.request_id]
        assert np.array_equal(fast_response.output, slow_response.output)
        assert abs(fast_response.cycles - slow_response.cycles) / slow_response.cycles <= 0.10
    print(table.render())
    print(
        f"fast tier served {len(fast_responses)} requests bit-identically; "
        f"wall p50 {fast_service.metrics.wall_summary().p50 * 1e3:.1f} ms vs "
        f"{service.metrics.wall_summary().p50 * 1e3:.1f} ms cycle-accurate"
    )


if __name__ == "__main__":
    main()
