#!/usr/bin/env python3
"""Fleet-simulation walkthrough: workload → admission → router →
replicas → metrics.

One simulated SoC serves one request stream; the ROADMAP's north star
is a fleet.  `repro.cluster` scales the serve layer out FireSim-style:
N replicas (each modelling one SoC-backed `InferenceService`) behind a
routing policy, with SLO-aware admission control shedding what the
fleet cannot serve and an autoscaler resizing it under bursts.  The
fleet runs on a *virtual* clock priced from the calibrated fast path,
so every number below reproduces bit-exactly from the seeds.

1. generate a seeded Poisson workload over a lenet5+resnet18 mix,
2. compare the three routing policies on one congested fleet,
3. stress a single replica with a bursty (MMPP) trace, then let the
   autoscaler absorb the same trace inside the rejection SLO,
4. execute a small workload for real (fast tier) and check the fleet's
   outputs are bit-identical to a single service serving the same
   requests.

Usage::

    python examples/cluster_sim.py
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cluster import (
    AdmissionController,
    Autoscaler,
    BurstyArrivals,
    ClusterSimulation,
    PoissonArrivals,
    SloPolicy,
    generate_workload,
    make_router,
    offered_rps,
)
from repro.core import calibrate
from repro.nvdla import NV_SMALL
from repro.serve import DeploymentSpec, InferenceService, shared_cache

SEED = 2026


def main() -> None:
    cache = shared_cache()
    deployments = [DeploymentSpec("lenet5"), DeploymentSpec("resnet18")]

    print("=== 1. seeded open-loop workload ===")
    workload = generate_workload(
        PoissonArrivals(120.0), deployments, 240, seed=SEED
    )
    print(
        f"{len(workload)} requests, offered {offered_rps(workload):.1f} rps, "
        f"mix {sorted({r.deployment.model for r in workload})}"
    )

    print("\n=== 2. routing policies on a congested fleet ===")
    # Residency capacity 1: each replica's DRAM holds one model's
    # artefacts, so routing decides how often warm-up is re-paid.
    for policy in ("round_robin", "least_outstanding", "cache_affinity"):
        simulation = ClusterSimulation(
            make_router(policy), replicas=2, cache=cache, resident_capacity=1
        )
        metrics = simulation.run(workload).metrics
        summary = metrics.latency_summary()
        print(
            f"  {policy:<18} goodput {metrics.goodput_rps:6.1f} rps  "
            f"p99 {summary.p99 * 1e3:7.1f} ms  "
            f"warm hit rate {metrics.resident_hit_rate * 100:3.0f}%"
        )
    print("  (cache-affinity keeps each model resident on its owner replica)")

    print("\n=== 3. autoscaling a bursty trace ===")
    bursty = generate_workload(
        BurstyArrivals(100.0, 500.0, mean_calm_s=1.5, mean_burst_s=0.8),
        [DeploymentSpec("lenet5")],
        600,
        seed=3,
    )
    slo = SloPolicy(slo_latency_s=0.10, max_rejection_rate=0.05, max_queue_depth=24)
    static = ClusterSimulation(
        make_router("least_outstanding"),
        replicas=1,
        admission=AdmissionController(slo),
        cache=cache,
    ).run(bursty).metrics
    scaled_sim = ClusterSimulation(
        make_router("least_outstanding"),
        replicas=1,
        admission=AdmissionController(slo),
        autoscaler=Autoscaler(
            min_replicas=1,
            max_replicas=8,
            target_p99_s=0.06,
            evaluate_every_s=0.05,
            window_s=0.3,
            provision_delay_s=0.05,
            up_cooldown_s=0.05,
        ),
        cache=cache,
    )
    scaled = scaled_sim.run(bursty).metrics
    print(
        f"  static (1 replica): {static.rejection_rate * 100:5.1f}% rejected "
        f"→ SLO {'met' if static.meets_rejection_slo() else 'MISSED'}"
    )
    print(
        f"  autoscaled (≤8):    {scaled.rejection_rate * 100:5.1f}% rejected "
        f"→ SLO {'met' if scaled.meets_rejection_slo() else 'MISSED'}, "
        f"peak {scaled.peak_replicas} replicas"
    )
    for event in scaled.scale_events:
        print(f"    {event.render()}")

    print("\n=== 4. fleet outputs are bit-identical to one service ===")
    # Calibrate lenet5 (one cycle-accurate run) so the fleet can
    # *execute* requests on the fast tier, then serve the same request
    # set through a plain single InferenceService and compare tensors.
    table = calibrate(("lenet5",), NV_SMALL, cache=cache)
    fast = [replace(d, execution_mode="fast") for d in deployments[:1]]
    executed = generate_workload(
        PoissonArrivals(100.0), fast, 8, seed=11, with_inputs=True
    )
    fleet_result = ClusterSimulation(
        make_router("cache_affinity"),
        replicas=2,
        cache=cache,
        calibration=table,
        execute=True,
    ).run(executed)
    single = InferenceService(cache=cache, calibration=table)
    for request in executed:
        single.request(request.deployment, request.input_image)
    singles = sorted(single.run_pending(), key=lambda r: r.request_id)
    for index, request in enumerate(executed):
        fleet_output = fleet_result.responses[request.request_id].output
        assert np.array_equal(fleet_output, singles[index].output)
    print(
        f"  {len(executed)} requests executed across "
        f"{sum(1 for r in fleet_result.replicas if r.executed)} replica services "
        f"— outputs identical to the single-service run"
    )
    print("\n" + fleet_result.metrics.render())


if __name__ == "__main__":
    main()
