#!/usr/bin/env python3
"""Design-space exploration: custom NVDLA builds between small and full.

The paper ships the two official configurations; the interesting
engineering question its conclusion raises is *what lies between* —
how MAC count, CBUF capacity and memory-path width trade latency
against FPGA resources.  This sweep evaluates custom builds on
ResNet-18 and checks which ones still fit the ZCU102.

Usage::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.baremetal import generate_baremetal
from repro.core import Soc
from repro.fpga import ZCU102, synthesize
from repro.fpga.resources import estimate_system
from repro.nn.zoo import resnet18_cifar
from repro.nvdla.config import HardwareConfig, Precision


def make_config(atomic_c: int, atomic_k: int, cbuf_kib: int) -> HardwareConfig:
    return HardwareConfig(
        name=f"nv_{atomic_c}x{atomic_k}_{cbuf_kib}k",
        atomic_c=atomic_c,
        atomic_k=atomic_k,
        cbuf_banks=32,
        cbuf_bank_bytes=cbuf_kib * 1024 // 32,
        precisions=(Precision.INT8,),
        dbb_width_bits=64,
        memory_atom_bytes=8,
        sdp_throughput=max(1, atomic_k // 8),
        pdp_throughput=max(1, atomic_k // 8),
        cdp_throughput=max(1, atomic_k // 8),
        rubik_supported=False,
    )


def main() -> None:
    net = resnet18_cifar()
    print(f"design-space sweep on {net.name} (INT8, 100 MHz)\n")
    header = f"{'config':<16} {'MACs':>5} {'CBUF':>6} {'ms':>8} {'LUTs':>9} {'fits ZCU102':>12}"
    print(header)
    print("-" * len(header))

    points = [
        (8, 8, 32),     # nv_small
        (16, 8, 64),
        (16, 16, 64),
        (32, 16, 128),
        (32, 32, 256),
        (64, 32, 512),  # nv_full-like (INT8 only)
    ]
    results = []
    for atomic_c, atomic_k, cbuf_kib in points:
        config = make_config(atomic_c, atomic_k, cbuf_kib)
        bundle = generate_baremetal(net, config, fidelity="timing")
        soc = Soc(config, frequency_hz=100e6, fidelity="timing")
        soc.load_bundle(bundle)
        run = soc.run_inference(bundle)
        synth = synthesize(config, ZCU102)
        luts = estimate_system(config).luts
        results.append((config, run.milliseconds, synth.fits))
        print(
            f"{config.name:<16} {config.mac_cells:>5} {cbuf_kib:>5}K "
            f"{run.milliseconds:>8.2f} {luts:>9.0f} {'yes' if synth.fits else 'NO':>12}"
        )

    fitting = [r for r in results if r[2]]
    best = min(fitting, key=lambda r: r[1])
    print(
        f"\nfastest configuration that fits the ZCU102: {best[0].name} "
        f"at {best[1]:.2f} ms ({best[0].mac_cells} MACs)"
    )
    print("larger arrays stop paying off once DMA dominates — the same")
    print("bandwidth wall the paper hits when proposing the 512-bit AXI path.")


if __name__ == "__main__":
    main()
