#!/usr/bin/env python3
"""Edge-inference scenario: ResNet-18 INT8 on the nv_small SoC.

The workload the paper's introduction motivates: a resource-constrained
edge device classifying a 32x32 image, with no OS on board.  Shows the
INT8 calibration step (the paper's future-work item 1), the latency
split between accelerator phases, and the comparison with both the
paper's measurement and the ESP/Linux baseline.

Usage::

    python examples/resnet18_edge_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.baremetal import generate_baremetal
from repro.baseline import EspPlatform
from repro.core import Soc
from repro.nn import ReferenceExecutor
from repro.nn.quantize import calibrate_network
from repro.nn.zoo import resnet18_cifar
from repro.nvdla import NV_SMALL


def main() -> None:
    net = resnet18_cifar()
    print(f"{net.name}: {net.layer_count()} layers, {net.parameter_count():,} params")

    print("\ncalibrating INT8 scales (the paper's missing calibration tables)...")
    table = calibrate_network(net, samples=4)
    print(f"  {len(table.scales)} blob scales, e.g. data={table.scales['data']:.4f}")

    from repro.serve import make_input_for

    rng = np.random.default_rng(99)
    image = make_input_for(net, rng)
    bundle = generate_baremetal(net, NV_SMALL, input_image=image)

    soc = Soc(NV_SMALL, frequency_hz=100e6)
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
    assert result.ok

    print(f"\nbare-metal inference: {result.milliseconds:.1f} ms @ 100 MHz "
          f"(paper Table II: 16.2 ms)")

    # Phase breakdown from the engine's op records.
    by_kind: dict[str, int] = {}
    for record in result.op_records:
        by_kind[record.kind] = by_kind.get(record.kind, 0) + record.cycles
    total_ops = sum(by_kind.values())
    print("accelerator time by op kind:")
    for kind, cycles in sorted(by_kind.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:<6} {cycles:>10,} cycles ({cycles / total_ops * 100:4.1f}%)")

    esp = EspPlatform().run(bundle.loadable)
    print(f"\nESP/Linux baseline @ 50 MHz: {esp.milliseconds:.0f} ms "
          f"(software stack: {esp.software_fraction * 100:.0f}%)")
    print(f"bare-metal speedup: {esp.milliseconds / result.milliseconds:.0f}x")

    executor = ReferenceExecutor(net)
    executor.run(image, record_blobs=True)
    expected = executor.blobs["fc"]
    correlation = np.corrcoef(result.output.flatten(), expected.flatten())[0, 1]
    print(f"\nINT8 output correlation with float reference: {correlation:.3f}")
    print(f"top-1: soc={int(np.argmax(result.output))} reference={int(np.argmax(expected))}")


if __name__ == "__main__":
    main()
