#!/usr/bin/env python3
"""Quickstart: LeNet-5 through the complete bare-metal flow.

Runs the whole of the paper in one script:

1. build LeNet-5 (the Caffe-equivalent model),
2. compile it for nv_small and execute it on the virtual platform,
   capturing the CSB/DBB trace,
3. convert the trace into a configuration file and RISC-V assembly,
4. run the generated machine code on the SoC model (µRISC-V + NVDLA),
5. compare the SoC output with the float reference and report the
   latency against the paper's Table II row (4.8 ms @ 100 MHz).

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baremetal import generate_baremetal
from repro.core import Soc
from repro.nn import ReferenceExecutor
from repro.nn.zoo import lenet5
from repro.nvdla import NV_SMALL


def main() -> None:
    print("=== 1. model ===")
    net = lenet5()
    print(
        f"{net.name}: {net.layer_count()} layers, "
        f"{net.parameter_count():,} parameters "
        f"({net.model_size_bytes() / 1e6:.1f} MB fp32)"
    )

    print("\n=== 2-3. offline flow (compile -> VP trace -> assembly) ===")
    # One seeded generator threads through all input fabrication, so
    # the whole example is reproducible from this line.
    from repro.serve import make_input_for

    rng = np.random.default_rng(2024)
    image = make_input_for(net, rng)
    bundle = generate_baremetal(net, NV_SMALL, input_image=image)
    print(bundle.describe())

    print("\n=== 4. bare-metal execution on the SoC ===")
    soc = Soc(NV_SMALL, frequency_hz=100e6)
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
    status = "DONE" if result.ok else f"FAIL at command {result.fail_index}"
    print(f"self-check status: {status}")
    print(
        f"latency: {result.cycles:,} cycles = {result.milliseconds:.2f} ms "
        f"@ 100 MHz   (paper Table II: 4.8 ms)"
    )
    print(
        f"CPU: {result.stats.instructions:,} instructions; "
        f"{result.stats.poll_fraction * 100:.1f}% of cycles spent waiting on NVDLA"
    )

    print("\n=== 5. validation against the float reference ===")
    executor = ReferenceExecutor(net)
    executor.run(image, record_blobs=True)
    expected = executor.blobs["ip2"]  # pre-softmax logits
    error = np.abs(result.output - expected).max() / np.abs(expected).max()
    print(f"SoC output vs float reference: max relative error {error * 100:.1f}% (INT8)")
    print(f"SoC output == VP output bit-exactly: {np.array_equal(result.output, bundle.vp_result.output)}")
    print(f"top-1 class: soc={int(np.argmax(result.output))} reference={int(np.argmax(expected))}")


if __name__ == "__main__":
    main()
