#!/usr/bin/env python3
"""Bring your own network: "automated generation ... for arbitrary
Caffe neural network models" (paper contribution 2).

Defines a custom CNN in the prototxt text format, parses it, and pushes
it through the complete flow — demonstrating that nothing in the
pipeline is special-cased for the zoo models.

Usage::

    python examples/custom_model_flow.py
"""

from __future__ import annotations

import numpy as np

from repro.baremetal import generate_baremetal
from repro.core import Soc, TestSystem
from repro.nn import ReferenceExecutor
from repro.nn.caffe_proto import from_prototxt
from repro.nvdla import NV_SMALL

PROTOTXT = """
name: "edgenet"
layer { name: "data" type: "Input" top: "data"
        input_param { shape { dim: 1 dim: 3 dim: 16 dim: 16 } } }
layer { name: "conv1" type: "Convolution" bottom: "data" top: "conv1"
        convolution_param { num_output: 16 kernel_size: 3 pad: 1 } }
layer { name: "relu1" type: "ReLU" bottom: "conv1" top: "relu1" }
layer { name: "pool1" type: "Pooling" bottom: "relu1" top: "pool1"
        pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layer { name: "conv2a" type: "Convolution" bottom: "pool1" top: "conv2a"
        convolution_param { num_output: 16 kernel_size: 1 } }
layer { name: "relu2a" type: "ReLU" bottom: "conv2a" top: "relu2a" }
layer { name: "conv2b" type: "Convolution" bottom: "pool1" top: "conv2b"
        convolution_param { num_output: 16 kernel_size: 3 pad: 1 } }
layer { name: "relu2b" type: "ReLU" bottom: "conv2b" top: "relu2b" }
layer { name: "cat" type: "Concat" bottom: "relu2a" bottom: "relu2b" top: "cat" }
layer { name: "pool2" type: "Pooling" bottom: "cat" top: "pool2"
        pooling_param { pool: AVE global_pooling: true } }
layer { name: "fc" type: "InnerProduct" bottom: "pool2" top: "fc"
        inner_product_param { num_output: 10 } }
layer { name: "prob" type: "Softmax" bottom: "fc" top: "prob" }
"""


def main() -> None:
    print("parsing custom prototxt...")
    net = from_prototxt(PROTOTXT, seed=77)
    print(net.summary())

    from repro.serve import make_input_for

    rng = np.random.default_rng(1)
    image = make_input_for(net, rng)

    print("\nrunning the offline flow (compile -> VP -> assembly)...")
    bundle = generate_baremetal(net, NV_SMALL, input_image=image)
    print(bundle.describe())
    print(f"zero-copy concat: {bundle.loadable.tiling_summary}")

    print("\nfull Fig. 4 experiment: Zynq preload, then bare-metal run...")
    system = TestSystem(Soc(NV_SMALL, frequency_hz=100e6))
    result = system.run_experiment(bundle)
    assert result.ok
    print(system.describe())
    print(f"inference: {result.milliseconds:.3f} ms @ 100 MHz")

    executor = ReferenceExecutor(net)
    executor.run(image, record_blobs=True)
    expected = executor.blobs["fc"]
    error = np.abs(result.output - expected).max() / (np.abs(expected).max() + 1e-9)
    print(f"max relative error vs float reference: {error * 100:.1f}% (INT8)")
    print(f"top-1: soc={int(np.argmax(result.output))} reference={int(np.argmax(expected))}")


if __name__ == "__main__":
    main()
